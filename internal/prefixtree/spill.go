package prefixtree

import (
	"fmt"
	"io"

	"qppt/internal/arena"
	"qppt/internal/duplist"
)

// Freeze/Thaw: the tree's spill hooks (ROADMAP "Index spilling").
//
// Because every reference inside the tree is a compact pointer — an arena
// index, not a machine address — the whole index is position-independent:
// Freeze writes the node chunks verbatim and the content leaves (key +
// payload rows, which embed Go slices and so cannot be dumped raw) in one
// sequential pass, then detaches the chunk storage so the garbage
// collector reclaims it. Thaw reads the stream back into freshly
// allocated chunks; node ordinals and leaf indices are reproduced
// exactly, so the restored tree answers every query identically.
//
// The cheap scalar state (key/row counters, geometry) stays in the Tree
// struct across a freeze, so planners can keep consulting Keys()/Rows()
// on a frozen index without touching the spill file.

// freezeMagic guards against thawing a stream produced by a different
// structure (or a different format revision).
const freezeMagic = 0x5150_5054_5054_0001 // "QPPT" + prefix-tree format 1

// Frozen reports whether the tree's chunk storage is currently detached
// (spilled). A frozen tree must not be queried or mutated until Thaw.
func (t *Tree) Frozen() bool { return t.frozen }

// WriteSnapshot writes the tree's storage to w in one sequential pass —
// node chunks, leaf free list, and every content leaf. The storage stays
// attached and the tree fully usable; call Release once the snapshot is
// safely persisted to actually detach it. Splitting the two is what makes
// a failed spill harmless: on any write error nothing has been dropped.
//
// WriteSnapshot and Thaw consume exactly their own bytes and never read
// ahead, so several structures can share one stream (a sharded index
// snapshots all its shards into one spill file). Callers provide
// buffering; wrapping w or r here would steal the next structure's bytes
// on Thaw.
func (t *Tree) WriteSnapshot(w io.Writer) error {
	if t.frozen {
		return fmt.Errorf("prefixtree: WriteSnapshot on a frozen tree")
	}
	if err := arena.WriteU64(w, freezeMagic); err != nil {
		return err
	}
	if err := t.nodes.WriteChunks(w); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(len(t.freeLeaves))); err != nil {
		return err
	}
	if err := arena.WriteU32s(w, t.freeLeaves); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(t.leaves.Len())); err != nil {
		return err
	}
	werr := error(nil)
	t.leaves.Scan(func(_ uint32, lf *Leaf) bool {
		werr = writeLeaf(w, lf)
		return werr == nil
	})
	return werr
}

// Release detaches the node arena, leaf arena and payload slab the last
// WriteSnapshot captured; the garbage collector reclaims them. The tree
// keeps its counters and geometry but must not be queried or mutated
// until Thaw. Only call after the snapshot is safely persisted.
func (t *Tree) Release() {
	t.nodes.Detach()
	t.leaves.Reset()
	t.slab = nil
	t.freeLeaves = nil
	t.frozen = true
}

// Freeze is WriteSnapshot + Release in one step, for callers whose write
// target cannot fail after the fact (e.g. an in-memory buffer).
func (t *Tree) Freeze(w io.Writer) error {
	if err := t.WriteSnapshot(w); err != nil {
		return err
	}
	t.Release()
	return nil
}

// Thaw restores the storage Freeze wrote: node chunks come back verbatim,
// leaves are re-allocated index-for-index (so the compact pointers inside
// the restored nodes stay valid), and payload rows are rebuilt into a
// fresh slab.
func (t *Tree) Thaw(r io.Reader) error {
	if !t.frozen {
		return fmt.Errorf("prefixtree: Thaw on a tree that is not frozen")
	}
	magic, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	if magic != freezeMagic {
		return fmt.Errorf("prefixtree: bad freeze magic %#x", magic)
	}
	if err := t.nodes.ReadChunks(r); err != nil {
		return err
	}
	nFree, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.freeLeaves = make([]uint32, nFree)
	if err := arena.ReadU32s(r, t.freeLeaves); err != nil {
		return err
	}
	nLeaves, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.slab = duplist.NewSlab()
	t.leaves.Reset()
	row := make([]uint64, t.cfg.PayloadWidth)
	for i := uint64(0); i < nLeaves; i++ {
		li := t.leaves.Alloc(Leaf{})
		if err := readLeaf(r, t.leaf(li), t.cfg.PayloadWidth, t.slab, row); err != nil {
			return err
		}
	}
	t.frozen = false
	return nil
}

// writeLeaf serializes one content leaf: key, row count, then the rows in
// insertion order. Recycled leaf headers (on the free list) are zero
// leaves and serialize as key 0 with no rows.
func writeLeaf(w io.Writer, lf *Leaf) error {
	if err := arena.WriteU64(w, lf.Key); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(lf.Vals.Len())); err != nil {
		return err
	}
	if lf.Vals.Width() == 0 {
		return nil // existence-only rows carry no storage
	}
	werr := error(nil)
	lf.Vals.Scan(func(row []uint64) bool {
		werr = arena.WriteU64s(w, row)
		return werr == nil
	})
	return werr
}

// readLeaf rebuilds one content leaf in place, drawing row storage from
// slab. row is a caller-provided width-sized scratch buffer.
func readLeaf(r io.Reader, lf *Leaf, width int, slab *duplist.Slab, row []uint64) error {
	key, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	n, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	*lf = Leaf{Key: key, Vals: duplist.Make(width)}
	for j := uint64(0); j < n; j++ {
		if width > 0 {
			if err := arena.ReadU64s(r, row); err != nil {
				return err
			}
		}
		lf.Vals.AppendIn(slab, row[:width])
	}
	return nil
}
