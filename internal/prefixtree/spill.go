package prefixtree

import (
	"bufio"
	"fmt"
	"io"

	"qppt/internal/arena"
	"qppt/internal/duplist"
)

// Freeze/Thaw: the tree's spill hooks (ROADMAP "Index spilling").
//
// Because every reference inside the tree is a compact pointer — an arena
// index, not a machine address — the whole index is position-independent:
// Freeze writes the node chunks verbatim and the content leaves (key +
// payload rows, which embed Go slices and so cannot be dumped raw) in one
// sequential pass, then detaches the chunk storage. Thaw reads the stream
// back into freshly allocated chunks; node ordinals and leaf indices are
// reproduced exactly, so the restored tree answers every query identically.
//
// The freeze format is self-indexing (format 2): it records the byte
// length of the node section and a per-leaf-chunk directory of {min key,
// max key, byte length}. That enables two cheaper restore paths next to
// the plain copying Thaw:
//
//   - ThawMapped adopts the node chunks straight out of an mmap-ed spill
//     file — zero copies for the tree interior; only the content leaves
//     (whose duplicate lists embed Go slices) are rebuilt. The mapping is
//     private, so later in-place writes copy pages instead of corrupting
//     the file.
//   - ThawRange restores only the leaf chunks whose key range intersects
//     a consumer's range. Skipped leaves stay zero (empty) — harmless for
//     range-restricted consumers, because a zero leaf carries no rows and
//     the skipped chunks hold no key the consumer's range can reach.
//     ThawRange is additive: calling it again restores further chunks in
//     place, and a call spanning the full key space completes the tree.
//
// The cheap scalar state (key/row counters, geometry) stays in the Tree
// struct across a freeze, so planners can keep consulting Keys()/Rows()
// on a frozen index without touching the spill file.

// freezeMagic guards against thawing a stream produced by a different
// structure (or a different format revision).
const freezeMagic = 0x5150_5054_5054_0002 // "QPPT" + prefix-tree format 2

// Frozen reports whether the tree's chunk storage is currently detached
// (spilled). A frozen tree must not be queried or mutated until Thaw.
func (t *Tree) Frozen() bool { return t.frozen }

// Partial reports whether only part of the leaf payloads is resident
// (see ThawRange). A partial tree must only be queried inside the union
// of the thawed key ranges.
func (t *Tree) Partial() bool { return t.partial }

// leafSnapshotBytes reports the serialized size of one content leaf:
// key + row count, plus the rows themselves for width > 0.
func leafSnapshotBytes(lf *Leaf, width int) uint64 {
	if width == 0 {
		return 16
	}
	return 16 + 8*uint64(width)*uint64(lf.Vals.Len())
}

// leafDir builds the per-leaf-chunk directory (arena.LeafChunkDir):
// free-list leaves are zero and carry no rows, so only leaves with rows
// contribute to the chunk key ranges.
func (t *Tree) leafDir() []uint64 {
	return arena.LeafChunkDir(&t.leaves,
		func(lf *Leaf) uint64 { return leafSnapshotBytes(lf, t.cfg.PayloadWidth) },
		func(lf *Leaf) (uint64, bool) { return lf.Key, lf.Vals.Len() > 0 })
}

// WriteSnapshot writes the tree's storage to w in one sequential pass —
// node chunks, leaf free list, the leaf-chunk directory, and every content
// leaf. The storage stays attached and the tree fully usable; call Release
// once the snapshot is safely persisted to actually detach it. Splitting
// the two is what makes a failed spill harmless: on any write error
// nothing has been dropped.
//
// WriteSnapshot and the thaw paths consume exactly their own bytes and
// never read ahead, so several structures can share one stream (a sharded
// index snapshots all its shards into one spill file). Callers provide
// buffering; wrapping w or r here would steal the next structure's bytes
// on Thaw.
func (t *Tree) WriteSnapshot(w io.Writer) error {
	if t.frozen || t.partial {
		return fmt.Errorf("prefixtree: WriteSnapshot on a frozen or partially thawed tree")
	}
	if err := arena.WriteU64(w, freezeMagic); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(t.nodes.SnapshotLen())); err != nil {
		return err
	}
	if err := t.nodes.WriteChunks(w); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(len(t.freeLeaves))); err != nil {
		return err
	}
	if err := arena.WriteU32s(w, t.freeLeaves); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(t.leaves.Len())); err != nil {
		return err
	}
	dir := t.leafDir()
	if err := arena.WriteU64(w, uint64(len(dir)/3)); err != nil {
		return err
	}
	if err := arena.WriteU64s(w, dir); err != nil {
		return err
	}
	werr := error(nil)
	t.leaves.Scan(func(_ uint32, lf *Leaf) bool {
		werr = writeLeaf(w, lf)
		return werr == nil
	})
	return werr
}

// Release detaches the node arena, leaf arena and payload slab the last
// WriteSnapshot captured. With a recycler configured the heap chunks are
// parked for the next index instead of going to the garbage collector
// (mmap-adopted chunks are simply dropped — their pages belong to the
// spill file mapping). The tree keeps its counters and geometry but must
// not be queried or mutated until thawed. Only call after the snapshot is
// safely persisted.
func (t *Tree) Release() {
	t.nodes.Detach()
	t.leaves.Reset()
	if t.slab != nil {
		t.slab.Release()
	}
	t.slab = nil
	t.freeLeaves = nil
	t.partial = false
	t.thawedChunks = nil
	t.frozen = true
}

// Recycle drops a resident tree's chunk storage into the configured
// recycler (see Release); the executor calls it when the last consumer of
// an intermediate index is done. A frozen tree has nothing resident and
// is left untouched. The tree is unusable afterwards.
func (t *Tree) Recycle() {
	if !t.frozen {
		t.Release()
	}
}

// Materialize copies any mmap-adopted node chunks to the heap, so the
// tree survives the unmapping of the spill file it was thawed from.
func (t *Tree) Materialize() { t.nodes.Unmap() }

// Freeze is WriteSnapshot + Release in one step, for callers whose write
// target cannot fail after the fact (e.g. an in-memory buffer).
func (t *Tree) Freeze(w io.Writer) error {
	if err := t.WriteSnapshot(w); err != nil {
		return err
	}
	t.Release()
	return nil
}

// Thaw restores the storage WriteSnapshot wrote: node chunks come back
// verbatim, leaves are re-allocated index-for-index (so the compact
// pointers inside the restored nodes stay valid), and payload rows are
// rebuilt into a fresh slab.
func (t *Tree) Thaw(r io.Reader) error { return t.thaw(r, nil) }

// ThawMapped is Thaw over an mmap-ed spill file: the node chunks are
// adopted as zero-copy views of the mapped pages (see
// arena.Slots.ReadChunksMapped) and only the content leaves are rebuilt.
// The caller owns the mapping and must keep it alive until the tree is
// released, recycled, or Materialized. On error the tree stays frozen
// and holds no reference into the mapping, so the caller may unmap it
// and retry through any thaw path.
func (t *Tree) ThawMapped(mr *arena.MapReader) error {
	if err := t.thaw(mr, mr); err != nil {
		// The failed thaw may have adopted node chunks from the mapping;
		// drop them before the caller unmaps it (thaw flips the frozen
		// flag only on success, so the tree reads as frozen already).
		t.nodes.Detach()
		return err
	}
	return nil
}

func (t *Tree) thaw(r io.Reader, mr *arena.MapReader) error {
	if !t.frozen {
		return fmt.Errorf("prefixtree: Thaw on a tree that is not frozen")
	}
	magic, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	if magic != freezeMagic {
		return fmt.Errorf("prefixtree: bad freeze magic %#x", magic)
	}
	if _, err := arena.ReadU64(r); err != nil { // node section length
		return err
	}
	if mr != nil {
		err = t.nodes.ReadChunksMapped(mr)
	} else {
		err = t.nodes.ReadChunks(r)
	}
	if err != nil {
		return err
	}
	nFree, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.freeLeaves = make([]uint32, nFree)
	if err := arena.ReadU32s(r, t.freeLeaves); err != nil {
		return err
	}
	nLeaves, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	nChunks, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	dir := make([]uint64, 3*nChunks)
	if err := arena.ReadU64s(r, dir); err != nil {
		return err
	}
	t.slab = duplist.NewSlabIn(t.cfg.Recycler)
	t.leaves.Reset()
	row := make([]uint64, t.cfg.PayloadWidth)
	for i := uint64(0); i < nLeaves; i++ {
		li := t.leaves.Alloc(Leaf{})
		if err := readLeaf(r, t.leaf(li), t.cfg.PayloadWidth, t.slab, row); err != nil {
			return err
		}
	}
	t.frozen = false
	t.partial = false
	t.thawedChunks = nil
	return nil
}

// ThawRange restores the tree far enough to serve queries inside
// [lo, hi]: the tree interior (node chunks, free list) comes back in full,
// but of the content leaves only the chunks whose key range intersects
// [lo, hi] are read — the rest are skipped with a seek and their leaves
// stay zero (empty). It returns the bytes actually read from f and
// whether the tree is now fully restored.
//
// ThawRange is additive: on a partially thawed tree it seeks straight
// past the already resident sections and restores only the missing chunks
// the new range touches, in place. Other chunks are never touched, so
// concurrent readers of previously thawed ranges stay valid. A call with
// the full key span completes the tree.
func (t *Tree) ThawRange(f io.ReadSeeker, lo, hi uint64) (int64, bool, error) {
	fresh := t.frozen
	n, full, err := t.thawRange(f, lo, hi)
	if err != nil && fresh && !t.frozen {
		// A fresh partial thaw failed midway: roll the half-restored
		// storage back so the tree reads as frozen again — the spill file
		// is intact and a later pin can retry — and the manager's
		// residency accounting stays consistent.
		t.Release()
	}
	return n, full, err
}

func (t *Tree) thawRange(f io.ReadSeeker, lo, hi uint64) (int64, bool, error) {
	// A fully resident tree (possible as one shard of a partially thawed
	// sharded index) just skims its section: every chunk reads as thawed,
	// so the loop seeks straight to the stream end.
	skim := !t.frozen && !t.partial
	fresh := t.frozen
	var nRead int64
	magic, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	if magic != freezeMagic {
		return nRead, false, fmt.Errorf("prefixtree: bad freeze magic %#x", magic)
	}
	nodeBytes, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	nRead += 16
	if fresh {
		br := bufio.NewReaderSize(io.LimitReader(f, int64(nodeBytes)), 1<<18)
		if err := t.nodes.ReadChunks(br); err != nil {
			return nRead, false, err
		}
		nRead += int64(nodeBytes)
	} else if _, err := f.Seek(int64(nodeBytes), io.SeekCurrent); err != nil {
		return nRead, false, err
	}
	nFree, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	nRead += 8
	if fresh {
		t.freeLeaves = make([]uint32, nFree)
		if err := arena.ReadU32s(f, t.freeLeaves); err != nil {
			return nRead, false, err
		}
		nRead += 4 * int64(nFree)
	} else if _, err := f.Seek(4*int64(nFree), io.SeekCurrent); err != nil {
		return nRead, false, err
	}
	nLeaves, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	nChunks, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	dir := make([]uint64, 3*nChunks)
	if err := arena.ReadU64s(f, dir); err != nil {
		return nRead, false, err
	}
	nRead += 16 + 24*int64(nChunks)
	if fresh {
		t.slab = duplist.NewSlabIn(t.cfg.Recycler)
		t.leaves.Reset()
		for i := uint64(0); i < nLeaves; i++ {
			t.leaves.Alloc(Leaf{})
		}
		t.thawedChunks = make([]bool, nChunks)
		t.frozen = false
		t.partial = true
	}
	row := make([]uint64, t.cfg.PayloadWidth)
	n, full, err := arena.ThawChunks(f, &t.leaves, nLeaves, dir, t.thawedChunks, skim, lo, hi,
		func(r io.Reader, lf *Leaf) error {
			return readLeaf(r, lf, t.cfg.PayloadWidth, t.slab, row)
		})
	nRead += n
	if err != nil {
		return nRead, false, err
	}
	if full && !skim {
		t.partial = false
		t.thawedChunks = nil
	}
	return nRead, full, nil
}

// writeLeaf serializes one content leaf: key, row count, then the rows in
// insertion order. Recycled leaf headers (on the free list) are zero
// leaves and serialize as key 0 with no rows.
func writeLeaf(w io.Writer, lf *Leaf) error {
	if err := arena.WriteU64(w, lf.Key); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(lf.Vals.Len())); err != nil {
		return err
	}
	if lf.Vals.Width() == 0 {
		return nil // existence-only rows carry no storage
	}
	werr := error(nil)
	lf.Vals.Scan(func(row []uint64) bool {
		werr = arena.WriteU64s(w, row)
		return werr == nil
	})
	return werr
}

// readLeaf rebuilds one content leaf in place, drawing row storage from
// slab. row is a caller-provided width-sized scratch buffer.
func readLeaf(r io.Reader, lf *Leaf, width int, slab *duplist.Slab, row []uint64) error {
	key, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	n, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	*lf = Leaf{Key: key, Vals: duplist.Make(width)}
	for j := uint64(0); j < n; j++ {
		if width > 0 {
			if err := arena.ReadU64s(r, row); err != nil {
				return err
			}
		}
		lf.Vals.AppendIn(slab, row[:width])
	}
	return nil
}
