package prefixtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSyncScanSmall(t *testing.T) {
	a := MustNew(Config{})
	b := MustNew(Config{})
	for _, k := range []uint64{1, 5, 100, 1 << 20, 1 << 40} {
		a.Insert(k, nil)
	}
	for _, k := range []uint64{5, 100, 7, 1 << 40, 1 << 41} {
		b.Insert(k, nil)
	}
	var got []uint64
	SyncScan(a, b, func(la, lb *Leaf) bool {
		if la.Key != lb.Key {
			t.Fatalf("mismatched leaves: %d vs %d", la.Key, lb.Key)
		}
		got = append(got, la.Key)
		return true
	})
	want := []uint64{5, 100, 1 << 40}
	if len(got) != len(want) {
		t.Fatalf("intersection = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersection = %v, want %v", got, want)
		}
	}
}

func TestSyncScanAsymmetricDepths(t *testing.T) {
	// One tree holds a shallow content node (dynamic expansion) where the
	// other grew a deep subtree under the same fragment path.
	a := MustNew(Config{})
	b := MustNew(Config{})
	a.Insert(0x1000, nil) // alone in its subtree: stays shallow in a
	for i := uint64(0); i < 64; i++ {
		b.Insert(0x1000+i, nil) // forces b to expand the same region
	}
	b.Insert(0xF000_0000_0000_0000, nil)
	a.Insert(0xF000_0000_0000_0000, nil)
	a.Insert(0xF000_0000_0000_0001, nil) // now a is deep where b is shallow
	var got []uint64
	SyncScan(a, b, func(la, lb *Leaf) bool {
		got = append(got, la.Key)
		return true
	})
	want := []uint64{0x1000, 0xF000_0000_0000_0000}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("intersection = %#x, want %#x", got, want)
	}
}

func TestSyncScanGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on geometry mismatch")
		}
	}()
	SyncScan(MustNew(Config{PrefixLen: 4}), MustNew(Config{PrefixLen: 8}), nil)
}

func TestSyncScanEarlyStop(t *testing.T) {
	a := MustNew(Config{})
	b := MustNew(Config{})
	for i := uint64(0); i < 100; i++ {
		a.Insert(i, nil)
		b.Insert(i, nil)
	}
	n := 0
	if SyncScan(a, b, func(la, lb *Leaf) bool { n++; return n < 10 }) {
		t.Error("early-stopped scan reported completion")
	}
	if n != 10 {
		t.Errorf("visited %d, want 10", n)
	}
}

func TestPropertySyncScanIsSetIntersection(t *testing.T) {
	for _, cfg := range []Config{
		{PrefixLen: 4, KeyBits: 32},
		{PrefixLen: 6, KeyBits: 64},
		{PrefixLen: 2, KeyBits: 16},
	} {
		cfg := cfg
		f := func(ka, kb []uint16) bool {
			a, b := MustNew(cfg), MustNew(cfg)
			sa, sb := map[uint64]bool{}, map[uint64]bool{}
			for _, k := range ka {
				a.Insert(uint64(k), nil)
				sa[uint64(k)] = true
			}
			for _, k := range kb {
				b.Insert(uint64(k), nil)
				sb[uint64(k)] = true
			}
			want := 0
			for k := range sa {
				if sb[k] {
					want++
				}
			}
			got := 0
			prev, first := uint64(0), true
			ok := SyncScan(a, b, func(la, lb *Leaf) bool {
				if la.Key != lb.Key || !sa[la.Key] || !sb[la.Key] {
					return false
				}
				if !first && la.Key <= prev {
					return false // must be in ascending order
				}
				prev, first = la.Key, false
				got++
				return true
			})
			return ok && got == want
		}
		qcfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(21))}
		if err := quick.Check(f, qcfg); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
	}
}

// TestSyncScanSkipsSubtrees verifies the performance property that
// motivates the synchronous scan: disjoint regions are never descended
// into. We measure by counting visited leaves on disjoint trees.
func TestSyncScanSkipsSubtrees(t *testing.T) {
	a := MustNew(Config{})
	b := MustNew(Config{})
	for i := uint64(0); i < 10000; i++ {
		a.Insert(i, nil)         // low region
		b.Insert(i+(1<<40), nil) // high region
	}
	SyncScan(a, b, func(la, lb *Leaf) bool {
		t.Fatalf("visited key %d in disjoint trees", la.Key)
		return false
	})
}
