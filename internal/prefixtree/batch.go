package prefixtree

import (
	"sync"

	"qppt/internal/arena"
	"qppt/internal/kernel"
)

// Batch processing (paper Section 2.3, Algorithm 1).
//
// As soon as a tree outgrows the CPU caches, pointer chasing serializes on
// one cache miss per level. Processing a batch of keys level-by-level makes
// the per-job loads within one level independent of each other, so the
// memory system overlaps their misses (the paper additionally issues
// explicit prefetches; in Go the independent loads themselves provide the
// memory-level parallelism). QPPT uses this for the join operators'
// joinbuffers and for buffered intermediate-index inserts.

// DefaultBatchSize is the batch size QPPT uses for joinbuffers and insert
// buffers when the caller does not choose one; it matches the paper
// demonstrator's middle setting.
const DefaultBatchSize = 512

// lookupJob mirrors Algorithm 1's job structure, carrying arena indices
// instead of pointers: the key, the ordinal of the current node on the
// path (jobDone once finished), and the resolved leaf index + 1 (0 while
// unresolved/absent). 16 bytes per job — half the pointer layout's size —
// so a 512-key batch fits in a third of an L1 data cache.
type lookupJob struct {
	key  uint64
	node uint32
	leaf uint32
}

const jobDone = ^uint32(0)

// jobPool recycles batch scratch space so steady-state batched probes and
// inserts on the hot join path allocate nothing. A sync.Pool (rather than
// a tree-owned buffer) keeps concurrent LookupBatch calls from parallel
// morsel workers safe: each call checks out a private buffer.
var jobPool = sync.Pool{New: func() any { return new([]lookupJob) }}

// getJobs checks a job buffer of length n out of the pool, growing it
// only when a larger batch than ever before arrives.
func getJobs(n int) *[]lookupJob {
	jp := jobPool.Get().(*[]lookupJob)
	if cap(*jp) < n {
		*jp = make([]lookupJob, n)
	}
	*jp = (*jp)[:n]
	return jp
}

// LookupBatch resolves all keys and calls visit(i, leaf) for each, where
// leaf is nil for absent keys. The traversal is level-synchronous: every
// pass advances every unfinished job by one tree level, so the node loads
// within a pass are independent and their cache misses overlap. Batches
// large enough to amortize the setup take the word-parallel kernel
// descent (batch_kernel.go); the scalar job loop below stays the
// fallback and the oracle.
func (t *Tree) LookupBatch(keys []uint64, visit func(i int, lf *Leaf)) {
	if kernel.Batched(len(keys)) {
		t.lookupBatchKernel(keys, visit)
		return
	}
	t.lookupBatchScalar(keys, visit)
}

func (t *Tree) lookupBatchScalar(keys []uint64, visit func(i int, lf *Leaf)) {
	if len(keys) == 0 {
		return
	}
	jp := getJobs(len(keys))
	jobs := *jp
	for i, k := range keys {
		t.checkKey(k)
		jobs[i] = lookupJob{key: k, node: rootNode}
	}
	pending := len(jobs)
	for level := 0; pending > 0; level++ {
		// Key-sorted batches (the fused chains' probe buffers arrive
		// sorted) place jobs that share a tree prefix next to each other;
		// memoizing the last (node, fragment) slot read walks each shared
		// descent once per level instead of once per job. The tree is not
		// mutated during a lookup, so the memo can never go stale; unsorted
		// batches still resolve correctly, they just rarely hit the memo.
		memoNode, memoFrag := jobDone, uint64(0)
		var memoRef arena.Ref
		for i := range jobs {
			j := &jobs[i]
			if j.node == jobDone {
				continue
			}
			f := t.frag(j.key, level)
			var r arena.Ref
			if j.node == memoNode && f == memoFrag {
				r = memoRef
			} else {
				r = arena.Ref(t.nodes.Block(j.node)[f])
				memoNode, memoFrag, memoRef = j.node, f, r
			}
			switch {
			case r.IsNil():
				j.node = jobDone
				pending--
			case r.IsLeaf():
				if li := r.Index(); t.leaf(li).Key == j.key {
					j.leaf = li + 1
				}
				j.node = jobDone
				pending--
			default:
				j.node = r.Index()
			}
		}
	}
	for i := range jobs {
		if lp := jobs[i].leaf; lp != 0 {
			visit(i, t.leaf(lp-1))
		} else {
			visit(i, nil)
		}
	}
	jobPool.Put(jp)
}

// InsertBatch inserts rows[i] under keys[i] for all i, advancing all jobs
// level-by-level like LookupBatch. rows may be nil for width-0 trees;
// otherwise len(rows) must equal len(keys).
func (t *Tree) InsertBatch(keys []uint64, rows [][]uint64) {
	if len(keys) == 0 {
		return
	}
	if rows != nil && len(rows) != len(keys) {
		panic("prefixtree: InsertBatch length mismatch")
	}
	jp := getJobs(len(keys))
	jobs := *jp
	for i, k := range keys {
		t.checkKey(k)
		jobs[i] = lookupJob{key: k, node: rootNode}
	}
	pending := len(jobs)
	for level := 0; pending > 0; level++ {
		for i := range jobs {
			j := &jobs[i]
			if j.node == jobDone {
				continue
			}
			blk := t.nodes.Block(j.node)
			f := t.frag(j.key, level)
			r := arena.Ref(blk[f])
			switch {
			case r.IsNil():
				li := t.newLeaf(j.key)
				blk[f] = uint32(arena.LeafRef(li))
				j.leaf = li + 1
				j.node = jobDone
				pending--
			case r.IsLeaf():
				li := r.Index()
				if t.leaf(li).Key == j.key {
					j.leaf = li + 1
					j.node = jobDone
					pending--
					continue
				}
				// Collision: expand one level and retry this job at the
				// new child on the next pass (the resident leaf moves
				// down, matching the single-key insert path).
				child := t.nodes.Alloc()
				t.nodes.Block(child)[t.frag(t.leaf(li).Key, level+1)] = uint32(r)
				blk[f] = uint32(arena.NodeRef(child))
				j.node = child
			default:
				j.node = r.Index()
			}
		}
	}
	for i := range jobs {
		var row []uint64
		if rows != nil {
			row = rows[i]
		}
		t.addRow(t.leaf(jobs[i].leaf-1), row)
	}
	jobPool.Put(jp)
}
