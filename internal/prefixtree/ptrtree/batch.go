package ptrtree

import "qppt/internal/duplist"

// Batch processing (paper Section 2.3, Algorithm 1).
//
// As soon as a tree outgrows the CPU caches, pointer chasing serializes on
// one cache miss per level. Processing a batch of keys level-by-level makes
// the per-job loads within one level independent of each other, so the
// memory system overlaps their misses (the paper additionally issues
// explicit prefetches; in Go the independent loads themselves provide the
// memory-level parallelism). QPPT uses this for the join operators'
// joinbuffers and for buffered intermediate-index inserts.

// DefaultBatchSize is the batch size QPPT uses for joinbuffers and insert
// buffers when the caller does not choose one; it matches the paper
// demonstrator's middle setting.
const DefaultBatchSize = 512

// lookupJob mirrors Algorithm 1's job structure: the key, the current node
// on the path, and a done flag (signalled here by node == nil).
type lookupJob struct {
	key  uint64
	node *node
	leaf *Leaf
}

// LookupBatch resolves all keys and calls visit(i, leaf) for each, where
// leaf is nil for absent keys. The traversal is level-synchronous: every
// pass advances every unfinished job by one tree level.
func (t *Tree) LookupBatch(keys []uint64, visit func(i int, lf *Leaf)) {
	if len(keys) == 0 {
		return
	}
	jobs := make([]lookupJob, len(keys))
	for i, k := range keys {
		t.checkKey(k)
		jobs[i] = lookupJob{key: k, node: t.root}
	}
	pending := len(jobs)
	for level := 0; pending > 0; level++ {
		for i := range jobs {
			j := &jobs[i]
			if j.node == nil {
				continue
			}
			s := &j.node.slots[t.frag(j.key, level)]
			if s.child != nil {
				j.node = s.child
				continue
			}
			if s.leaf != nil && s.leaf.Key == j.key {
				j.leaf = s.leaf
			}
			j.node = nil
			pending--
		}
	}
	for i := range jobs {
		visit(i, jobs[i].leaf)
	}
}

// InsertBatch inserts rows[i] under keys[i] for all i, advancing all jobs
// level-by-level like LookupBatch. rows may be nil for width-0 trees;
// otherwise len(rows) must equal len(keys).
func (t *Tree) InsertBatch(keys []uint64, rows [][]uint64) {
	if len(keys) == 0 {
		return
	}
	if rows != nil && len(rows) != len(keys) {
		panic("ptrtree: InsertBatch length mismatch")
	}
	jobs := make([]lookupJob, len(keys))
	for i, k := range keys {
		t.checkKey(k)
		jobs[i] = lookupJob{key: k, node: t.root}
	}
	pending := len(jobs)
	for level := 0; pending > 0; level++ {
		for i := range jobs {
			j := &jobs[i]
			if j.node == nil {
				continue
			}
			s := &j.node.slots[t.frag(j.key, level)]
			switch {
			case s.child != nil:
				j.node = s.child
			case s.leaf == nil:
				lf := &Leaf{Key: j.key, Vals: duplist.Make(t.cfg.PayloadWidth)}
				s.leaf = lf
				t.keys++
				j.leaf = lf
				j.node = nil
				pending--
			case s.leaf.Key == j.key:
				j.leaf = s.leaf
				j.node = nil
				pending--
			default:
				// Collision: expand one level and retry this job at the
				// new child on the next pass (the resident leaf moves
				// down, matching the single-key insert path).
				child := t.newNode()
				child.slots[t.frag(s.leaf.Key, level+1)].leaf = s.leaf
				s.leaf = nil
				s.child = child
				j.node = child
			}
		}
	}
	for i := range jobs {
		var row []uint64
		if rows != nil {
			row = rows[i]
		}
		t.addRow(jobs[i].leaf, row)
	}
}
