// Package ptrtree is the pointer-based generalized prefix tree — the
// pre-arena layout of package prefixtree, retained verbatim (every node
// slot is a 16-byte {child, leaf} pointer pair and every node, leaf and
// duplicate segment is an individual GC allocation).
//
// TEST-ONLY: since the pointer-baseline retirement (ROADMAP), no
// production code imports this package. It exists solely for the
// differential tests and layout benchmarks in package prefixtree, which
// pit the arena-backed compact-pointer layout against this baseline; the
// engine (package core) always builds arena-backed indexes. Keep it free
// of non-test importers.
//
// The tree is order-preserving and — unlike a B+-Tree — unbalanced: it
// splits the big-endian binary representation of a key into fragments of an
// equal prefix length k′ and uses each fragment to pick one of the 2^k′
// buckets of the node at that level, so every key has a fixed position in
// the tree. Thanks to the *dynamic expansion* optimization, a key's content
// node is stored at the shallowest level at which its fragment path is
// unique; inner nodes are only created on demand when two keys collide.
// Because of that, the key cannot always be reconstructed from the path, so
// content nodes store the complete key for the final comparison.
//
// Duplicates — multiple payload rows per key — are stored in sequential
// doubling segments (package duplist, paper Section 2.4), and batched
// lookups/inserts process many keys level-by-level to overlap their memory
// accesses (paper Section 2.3, Algorithm 1).
//
// The tree is a single-writer structure: concurrent readers are safe only
// while no writer is active. QPPT's evaluation is single-threaded by
// design, matching the paper.
package ptrtree

import (
	"fmt"

	"qppt/internal/duplist"
)

// Config parameterizes a Tree.
type Config struct {
	// PrefixLen is k′, the number of key bits consumed per tree level.
	// Must be in [1, 16]; the paper's default (and the best standard
	// trade-off, Section 2.1) is 4.
	PrefixLen uint
	// KeyBits is the key width in bits, in [1, 64]. Index keys narrower
	// than 64 bits make the tree shallower. Default 64.
	KeyBits uint
	// PayloadWidth is the number of uint64 attribute values stored per
	// row. Width 0 builds a pure existence index.
	PayloadWidth int
	// Fold, if non-nil, turns the tree into an aggregating index:
	// inserting a row under an existing key folds the new row into the
	// stored one instead of appending a duplicate (grouping/aggregation
	// as a side effect of index construction, paper Section 3).
	Fold func(dst, src []uint64)
}

func (c *Config) normalize() error {
	if c.PrefixLen == 0 {
		c.PrefixLen = 4
	}
	if c.KeyBits == 0 {
		c.KeyBits = 64
	}
	if c.PrefixLen > 16 {
		return fmt.Errorf("ptrtree: PrefixLen %d out of range [1,16]", c.PrefixLen)
	}
	if c.KeyBits > 64 {
		return fmt.Errorf("ptrtree: KeyBits %d out of range [1,64]", c.KeyBits)
	}
	if c.PayloadWidth < 0 {
		return fmt.Errorf("ptrtree: negative PayloadWidth")
	}
	return nil
}

// A Tree is a generalized prefix tree mapping uint64 keys to lists of
// fixed-width payload rows.
type Tree struct {
	cfg    Config
	root   *node
	levels int    // maximum depth in nodes
	fanout int    // 2^k′
	mask   uint64 // fanout-1
	keys   int    // distinct keys
	rows   int    // total payload rows
	nodes  int    // inner node count, for memory accounting
}

// A node holds 2^k′ buckets. Each bucket is empty, points to a child node,
// or points to a content leaf (dynamic expansion stores leaves as high up
// as possible).
type node struct {
	slots []slot
}

// slot is one bucket. At most one of child and leaf is non-nil.
type slot struct {
	child *node
	leaf  *Leaf
}

// A Leaf is a content node: the full key (required because dynamic
// expansion loses path information) plus all payload rows for that key.
// The row list is embedded by value to avoid a pointer chase per access.
type Leaf struct {
	Key  uint64
	Vals duplist.List
}

// New creates an empty tree. It returns an error for out-of-range
// configuration values.
func New(cfg Config) (*Tree, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:    cfg,
		fanout: 1 << cfg.PrefixLen,
		mask:   uint64(1)<<cfg.PrefixLen - 1,
		levels: int((cfg.KeyBits + cfg.PrefixLen - 1) / cfg.PrefixLen),
	}
	t.root = t.newNode()
	return t, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) newNode() *node {
	t.nodes++
	return &node{slots: make([]slot, t.fanout)}
}

// frag extracts the key fragment for the given level (0 = root). Fragments
// are taken from the most significant bits first so bucket order equals key
// order, which makes the tree order-preserving.
func (t *Tree) frag(key uint64, level int) uint64 {
	shift := int(t.cfg.KeyBits) - (level+1)*int(t.cfg.PrefixLen)
	if shift <= 0 {
		// Deepest level: the remaining low-order bits.
		return key & (t.mask >> uint(-shift))
	}
	return (key >> uint(shift)) & t.mask
}

// Keys reports the number of distinct keys in the tree.
func (t *Tree) Keys() int { return t.keys }

// Rows reports the total number of payload rows in the tree.
func (t *Tree) Rows() int { return t.rows }

// PayloadWidth reports the payload row width in uint64 words.
func (t *Tree) PayloadWidth() int { return t.cfg.PayloadWidth }

// KeyBits reports the configured key width in bits.
func (t *Tree) KeyBits() uint { return t.cfg.KeyBits }

// PrefixLen reports k′.
func (t *Tree) PrefixLen() uint { return t.cfg.PrefixLen }

// checkKey panics if key has bits outside the configured key width; such a
// key can never be stored or found and always indicates a caller bug.
func (t *Tree) checkKey(key uint64) {
	if t.cfg.KeyBits < 64 && key>>t.cfg.KeyBits != 0 {
		panic(fmt.Sprintf("ptrtree: key %#x exceeds %d key bits", key, t.cfg.KeyBits))
	}
}

// Insert adds a payload row under key. With a Fold configured, the row is
// aggregated into the existing row for the key instead.
func (t *Tree) Insert(key uint64, row []uint64) {
	t.checkKey(key)
	lf := t.leafFor(key)
	t.addRow(lf, row)
}

// addRow appends or folds row into lf, maintaining the row count.
func (t *Tree) addRow(lf *Leaf, row []uint64) {
	if t.cfg.Fold != nil {
		was := lf.Vals.Len()
		lf.Vals.Aggregate(row, t.cfg.Fold)
		t.rows += lf.Vals.Len() - was
		return
	}
	lf.Vals.Append(row)
	t.rows++
}

// leafFor finds or creates the content node for key, applying dynamic
// expansion on collision.
func (t *Tree) leafFor(key uint64) *Leaf {
	n := t.root
	for level := 0; ; level++ {
		s := &n.slots[t.frag(key, level)]
		if s.child != nil {
			n = s.child
			continue
		}
		if s.leaf == nil {
			lf := &Leaf{Key: key, Vals: duplist.Make(t.cfg.PayloadWidth)}
			s.leaf = lf
			t.keys++
			return lf
		}
		if s.leaf.Key == key {
			return s.leaf
		}
		// Collision: expand by one level, pushing the resident leaf down.
		// The loop retries the same key at the new child; keys differ, so
		// their fragment paths split within t.levels levels and the loop
		// terminates.
		child := t.newNode()
		child.slots[t.frag(s.leaf.Key, level+1)].leaf = s.leaf
		s.leaf = nil
		s.child = child
		n = child
	}
}

// Lookup returns the leaf for key, or nil if the key is absent.
func (t *Tree) Lookup(key uint64) *Leaf {
	t.checkKey(key)
	n := t.root
	for level := 0; ; level++ {
		s := &n.slots[t.frag(key, level)]
		if s.child != nil {
			n = s.child
			continue
		}
		if s.leaf != nil && s.leaf.Key == key {
			return s.leaf
		}
		return nil
	}
}

// Contains reports whether key is present.
func (t *Tree) Contains(key uint64) bool { return t.Lookup(key) != nil }

// Delete removes key and all its rows, reporting whether it was present.
// Emptied inner nodes along the path are unlinked so iteration stays
// proportional to live content.
func (t *Tree) Delete(key uint64) bool {
	t.checkKey(key)
	var path [65]*node
	n := t.root
	level := 0
	for {
		path[level] = n
		s := &n.slots[t.frag(key, level)]
		if s.child != nil {
			n = s.child
			level++
			continue
		}
		if s.leaf == nil || s.leaf.Key != key {
			return false
		}
		t.keys--
		t.rows -= s.leaf.Vals.Len()
		s.leaf = nil
		break
	}
	// Unlink now-empty nodes bottom-up (the root always stays).
	for l := level; l > 0; l-- {
		if !path[l].empty() {
			break
		}
		parent := path[l-1]
		parent.slots[t.frag(key, l-1)] = slot{}
		t.nodes--
	}
	return true
}

func (n *node) empty() bool {
	for i := range n.slots {
		if n.slots[i].child != nil || n.slots[i].leaf != nil {
			return false
		}
	}
	return true
}

// Iterate visits every leaf in ascending key order. It stops early if visit
// returns false and reports whether the scan ran to completion.
func (t *Tree) Iterate(visit func(lf *Leaf) bool) bool {
	return iterate(t.root, visit)
}

func iterate(n *node, visit func(lf *Leaf) bool) bool {
	for i := range n.slots {
		s := &n.slots[i]
		if s.leaf != nil {
			if !visit(s.leaf) {
				return false
			}
		} else if s.child != nil {
			if !iterate(s.child, visit) {
				return false
			}
		}
	}
	return true
}

// Range visits, in ascending key order, every leaf with lo <= key <= hi.
// It stops early if visit returns false and reports whether the scan ran to
// completion.
func (t *Tree) Range(lo, hi uint64, visit func(lf *Leaf) bool) bool {
	t.checkKey(lo)
	t.checkKey(hi)
	if lo > hi {
		return true
	}
	return t.rangeNode(t.root, 0, lo, hi, visit)
}

func (t *Tree) rangeNode(n *node, level int, lo, hi uint64, visit func(lf *Leaf) bool) bool {
	// Restrict the fragment window at this level using the bounds' paths.
	// Only the first and last qualifying buckets need recursive bound
	// checks; buckets strictly between them are fully inside the range.
	loFrag := t.frag(lo, level)
	hiFrag := t.frag(hi, level)
	for f := loFrag; f <= hiFrag; f++ {
		s := &n.slots[f]
		if s.leaf != nil {
			if s.leaf.Key >= lo && s.leaf.Key <= hi {
				if !visit(s.leaf) {
					return false
				}
			}
			continue
		}
		if s.child == nil {
			continue
		}
		switch {
		case f == loFrag && f == hiFrag:
			if !t.rangeNode(s.child, level+1, lo, hi, visit) {
				return false
			}
		case f == loFrag:
			if !t.rangeNode(s.child, level+1, lo, t.keyMax(), visit) {
				return false
			}
		case f == hiFrag:
			if !t.rangeNode(s.child, level+1, 0, hi, visit) {
				return false
			}
		default:
			if !iterate(s.child, visit) {
				return false
			}
		}
	}
	return true
}

// keyMax returns the largest representable key for the configured width.
// Once the scan has descended past the low (resp. high) edge of a range,
// the bound on the other side no longer constrains the subtree, so it is
// widened to the full key space.
func (t *Tree) keyMax() uint64 {
	if t.cfg.KeyBits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<t.cfg.KeyBits - 1
}

// Min returns the smallest key in the tree; ok is false if the tree is
// empty.
func (t *Tree) Min() (key uint64, ok bool) {
	t.Iterate(func(lf *Leaf) bool {
		key, ok = lf.Key, true
		return false
	})
	return key, ok
}

// Max returns the largest key in the tree; ok is false if the tree is
// empty.
func (t *Tree) Max() (key uint64, ok bool) {
	n := t.root
	for {
		var last *slot
		for i := t.fanout - 1; i >= 0; i-- {
			s := &n.slots[i]
			if s.child != nil || s.leaf != nil {
				last = s
				break
			}
		}
		if last == nil {
			return 0, false
		}
		if last.leaf != nil {
			return last.leaf.Key, true
		}
		n = last.child
	}
}

// Bytes estimates the heap footprint of the tree in bytes: inner nodes plus
// leaf headers plus payload segments. Used by the k′ memory ablation.
func (t *Tree) Bytes() int {
	b := t.nodes * (t.fanout*16 + 24) // slots (two pointers each) + node header
	t.Iterate(func(lf *Leaf) bool {
		b += 32 + lf.Vals.Bytes() // leaf header + payload
		return true
	})
	return b
}

// Nodes reports the number of inner nodes, for memory accounting tests.
func (t *Tree) Nodes() int { return t.nodes }

// MaxDepth returns the deepest leaf level currently present (root = level
// 0). A freshly filled dense tree of n keys has depth ~ log2(n)/k′ thanks
// to dynamic expansion.
func (t *Tree) MaxDepth() int {
	return maxDepth(t.root, 0)
}

func maxDepth(n *node, level int) int {
	d := level
	for i := range n.slots {
		if c := n.slots[i].child; c != nil {
			if cd := maxDepth(c, level+1); cd > d {
				d = cd
			}
		}
	}
	return d
}
