package ptrtree

// Synchronous index scan (paper Section 4.2, Figure 6).
//
// Two unbalanced tries are scanned simultaneously from left to right. Only
// when a bucket is populated in *both* trees does the scan suspend on the
// current nodes and descend synchronously into both children; buckets used
// by only one tree are skipped without ever touching their subtrees. This
// is the join kernel of QPPT — and, through the same visit mechanism, the
// kernel of the intersect and distinct-union set operators.

// SyncScan visits, in ascending key order, every key present in both a and
// b, passing both leaves. The trees must agree on PrefixLen and KeyBits so
// their fragment grids line up; SyncScan panics otherwise, since silently
// joining misaligned trees would drop matches. It stops early if visit
// returns false and reports whether the scan ran to completion.
func SyncScan(a, b *Tree, visit func(la, lb *Leaf) bool) bool {
	if a.cfg.PrefixLen != b.cfg.PrefixLen || a.cfg.KeyBits != b.cfg.KeyBits {
		panic("ptrtree: SyncScan on trees with different geometry")
	}
	return syncNodes(a, a.root, b.root, 0, visit)
}

// syncNodes scans two nodes that sit at the same depth (level) in their
// respective trees.
func syncNodes(t *Tree, na, nb *node, level int, visit func(la, lb *Leaf) bool) bool {
	for f := 0; f < t.fanout; f++ {
		sa, sb := &na.slots[f], &nb.slots[f]
		if (sa.child == nil && sa.leaf == nil) || (sb.child == nil && sb.leaf == nil) {
			continue // bucket unused in at least one index: skip the descent
		}
		switch {
		case sa.leaf != nil && sb.leaf != nil:
			if sa.leaf.Key == sb.leaf.Key {
				if !visit(sa.leaf, sb.leaf) {
					return false
				}
			}
		case sa.leaf != nil: // a stored a content node high up, b has a subtree
			if lb := descend(t, sb.child, sa.leaf.Key, level+1); lb != nil {
				if !visit(sa.leaf, lb) {
					return false
				}
			}
		case sb.leaf != nil: // b stored a content node high up, a has a subtree
			if la := descend(t, sa.child, sb.leaf.Key, level+1); la != nil {
				if !visit(la, sb.leaf) {
					return false
				}
			}
		default: // both inner: suspend here, scan the children synchronously
			if !syncNodes(t, sa.child, sb.child, level+1, visit) {
				return false
			}
		}
	}
	return true
}

// SyncScanRange is SyncScan restricted to keys in [lo, hi]. It is the
// partitioning primitive for intra-operator parallelism (paper Section 7):
// the unbalanced tree splits deterministically into disjoint key-range
// subtrees, so concurrent workers can scan disjoint ranges of the same
// tree pair without coordination.
func SyncScanRange(a, b *Tree, lo, hi uint64, visit func(la, lb *Leaf) bool) bool {
	if a.cfg.PrefixLen != b.cfg.PrefixLen || a.cfg.KeyBits != b.cfg.KeyBits {
		panic("ptrtree: SyncScanRange on trees with different geometry")
	}
	if lo > hi {
		return true
	}
	return syncNodesRange(a, a.root, b.root, 0, lo, hi, visit)
}

// syncNodesRange is syncNodes with [lo, hi] bounds, handled exactly like
// Tree.rangeNode: only the edge fragments need recursive bound checks.
func syncNodesRange(t *Tree, na, nb *node, level int, lo, hi uint64, visit func(la, lb *Leaf) bool) bool {
	loFrag := t.frag(lo, level)
	hiFrag := t.frag(hi, level)
	for f := loFrag; f <= hiFrag; f++ {
		sa, sb := &na.slots[f], &nb.slots[f]
		if (sa.child == nil && sa.leaf == nil) || (sb.child == nil && sb.leaf == nil) {
			continue
		}
		switch {
		case sa.leaf != nil && sb.leaf != nil:
			if sa.leaf.Key == sb.leaf.Key && sa.leaf.Key >= lo && sa.leaf.Key <= hi {
				if !visit(sa.leaf, sb.leaf) {
					return false
				}
			}
		case sa.leaf != nil:
			if sa.leaf.Key >= lo && sa.leaf.Key <= hi {
				if lb := descend(t, sb.child, sa.leaf.Key, level+1); lb != nil {
					if !visit(sa.leaf, lb) {
						return false
					}
				}
			}
		case sb.leaf != nil:
			if sb.leaf.Key >= lo && sb.leaf.Key <= hi {
				if la := descend(t, sa.child, sb.leaf.Key, level+1); la != nil {
					if !visit(la, sb.leaf) {
						return false
					}
				}
			}
		default:
			switch {
			case f == loFrag && f == hiFrag:
				if !syncNodesRange(t, sa.child, sb.child, level+1, lo, hi, visit) {
					return false
				}
			case f == loFrag:
				if !syncNodesRange(t, sa.child, sb.child, level+1, lo, t.keyMax(), visit) {
					return false
				}
			case f == hiFrag:
				if !syncNodesRange(t, sa.child, sb.child, level+1, 0, hi, visit) {
					return false
				}
			default:
				if !syncNodes(t, sa.child, sb.child, level+1, visit) {
					return false
				}
			}
		}
	}
	return true
}

// descend resolves key in the subtree rooted at n, where n sits at the
// given depth. This covers the asymmetric case where dynamic expansion
// stored a key as a shallow content node in one tree while the other tree
// grew a subtree under the same fragment path.
func descend(t *Tree, n *node, key uint64, level int) *Leaf {
	for {
		s := &n.slots[t.frag(key, level)]
		if s.child != nil {
			n = s.child
			level++
			continue
		}
		if s.leaf != nil && s.leaf.Key == key {
			return s.leaf
		}
		return nil
	}
}
