package prefixtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"qppt/internal/prefixtree/ptrtree"
)

// Randomized differential test for the arena-backed compact-pointer
// layout: identical Insert/InsertBatch/Lookup/Range/Iterate sequences are
// driven against the arena tree, a map[uint64][][]uint64 reference model,
// and the retained pointer-based baseline (package ptrtree). All three
// must agree on every observable result across tree geometries.

type refModel map[uint64][][]uint64

func (m refModel) insert(key uint64, row []uint64) {
	r := make([]uint64, len(row))
	copy(r, row)
	m[key] = append(m[key], r)
}

func (m refModel) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestDifferentialArenaVsModel(t *testing.T) {
	const payloadWidth = 2
	for _, prefixLen := range []uint{1, 4, 8, 16} {
		for _, keyBits := range []uint{8, 32, 64} {
			cfg := Config{PrefixLen: prefixLen, KeyBits: keyBits, PayloadWidth: payloadWidth}
			pcfg := ptrtree.Config{PrefixLen: prefixLen, KeyBits: keyBits, PayloadWidth: payloadWidth}
			tr := MustNew(cfg)
			base := ptrtree.MustNew(pcfg)
			model := refModel{}
			rng := rand.New(rand.NewSource(int64(prefixLen)<<8 | int64(keyBits)))
			keyMask := ^uint64(0)
			if keyBits < 64 {
				keyMask = uint64(1)<<keyBits - 1
			}
			randKey := func() uint64 {
				// Mix dense low keys with full-width random ones so both
				// shallow content nodes and deep collision paths arise.
				if rng.Intn(2) == 0 {
					return uint64(rng.Intn(300)) & keyMask
				}
				return rng.Uint64() & keyMask
			}
			randRow := func(k uint64) []uint64 {
				return []uint64{k, rng.Uint64()}
			}

			// Mixed single-key inserts, batched inserts and delete waves.
			// The deletes hit slab-backed lists (every list in the arena
			// tree draws from the tree's slab), so leaf-header and
			// path-node recycling runs against exactly the storage layout
			// production intermediates use — insert-only coverage would
			// let node-recycling bugs hide.
			for step := 0; step < 40; step++ {
				switch rng.Intn(3) {
				case 0:
					for i := 0; i < 50; i++ {
						k := randKey()
						row := randRow(k)
						tr.Insert(k, row)
						base.Insert(k, row)
						model.insert(k, row)
					}
				case 1:
					n := 1 + rng.Intn(600) // cross the DefaultBatchSize boundary
					keys := make([]uint64, n)
					rows := make([][]uint64, n)
					for i := range keys {
						keys[i] = randKey()
						rows[i] = randRow(keys[i])
					}
					tr.InsertBatch(keys, rows)
					base.InsertBatch(keys, rows)
					for i, k := range keys {
						model.insert(k, rows[i])
					}
				default:
					// Delete a mix of present keys (drawn from the model)
					// and random, mostly-absent ones; all three structures
					// must agree on what was present.
					victims := model.sortedKeys()
					rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
					if len(victims) > 40 {
						victims = victims[:40]
					}
					for i := 0; i < 20; i++ {
						victims = append(victims, randKey())
					}
					for _, k := range victims {
						_, present := model[k]
						if got := tr.Delete(k); got != present {
							t.Fatalf("k'=%d bits=%d: Delete(%#x) = %v, model %v",
								prefixLen, keyBits, k, got, present)
						}
						if got := base.Delete(k); got != present {
							t.Fatalf("k'=%d bits=%d: baseline Delete(%#x) = %v, model %v",
								prefixLen, keyBits, k, got, present)
						}
						delete(model, k)
					}
				}
			}

			// Recycling: a final delete wave frees leaf headers (and often
			// path nodes); fresh inserts must then reuse them instead of
			// growing the arenas. (The interleaved waves above may already
			// have been refilled by later insert steps, so recycle counts
			// are pinned against this explicit wave.)
			final := model.sortedKeys()
			if len(final) > 60 {
				final = final[:60]
			}
			for _, k := range final {
				tr.Delete(k)
				base.Delete(k)
				delete(model, k)
			}
			if len(tr.freeLeaves) == 0 {
				t.Fatalf("k'=%d bits=%d: delete wave left no recycled leaf headers", prefixLen, keyBits)
			}
			toInsert := len(tr.freeLeaves)
			if keyBits < 20 { // narrow key spaces may not have enough absent keys
				if avail := int(keyMask) + 1 - len(model); toInsert > avail {
					toInsert = avail
				}
			}
			freedLeaves := len(tr.freeLeaves)
			leavesAllocated := tr.leaves.Len()
			nodesAllocated := tr.nodes.Allocated() // total ever carved, excluding recycled
			for inserted := 0; inserted < toInsert; {
				k := randKey()
				if _, ok := model[k]; ok {
					continue
				}
				row := randRow(k)
				tr.Insert(k, row)
				base.Insert(k, row)
				model.insert(k, row)
				inserted++
			}
			if got := len(tr.freeLeaves); got != freedLeaves-toInsert {
				t.Fatalf("k'=%d bits=%d: %d inserts left %d of %d free leaf headers (want %d): recycling broken",
					prefixLen, keyBits, toInsert, got, freedLeaves, freedLeaves-toInsert)
			}
			if tr.leaves.Len() != leavesAllocated {
				t.Fatalf("k'=%d bits=%d: leaf arena grew from %d to %d despite free headers",
					prefixLen, keyBits, leavesAllocated, tr.leaves.Len())
			}
			// New collision paths may need inner nodes, but the arena must
			// only grow once the node free list is drained.
			if tr.nodes.Allocated() > nodesAllocated && tr.nodes.FreeBlocks() > 0 {
				t.Fatalf("k'=%d bits=%d: node arena grew by %d blocks with %d free blocks unused",
					prefixLen, keyBits, tr.nodes.Allocated()-nodesAllocated, tr.nodes.FreeBlocks())
			}

			// Counters.
			wantRows := 0
			for _, rows := range model {
				wantRows += len(rows)
			}
			if tr.Keys() != len(model) || tr.Rows() != wantRows {
				t.Fatalf("k'=%d bits=%d: Keys/Rows = %d/%d, model %d/%d",
					prefixLen, keyBits, tr.Keys(), tr.Rows(), len(model), wantRows)
			}

			// Lookup + LookupBatch: present and absent keys.
			probes := model.sortedKeys()
			for i := 0; i < 200; i++ {
				probes = append(probes, randKey())
			}
			for _, k := range probes {
				lf := tr.Lookup(k)
				want, present := model[k]
				if present != (lf != nil) {
					t.Fatalf("k'=%d bits=%d: Lookup(%#x) presence = %v, model %v",
						prefixLen, keyBits, k, lf != nil, present)
				}
				if present && !reflect.DeepEqual(lf.Vals.Rows(), want) {
					t.Fatalf("k'=%d bits=%d: Lookup(%#x) rows differ from model", prefixLen, keyBits, k)
				}
			}
			tr.LookupBatch(probes, func(i int, lf *Leaf) {
				want, present := model[probes[i]]
				if present != (lf != nil) {
					t.Fatalf("k'=%d bits=%d: LookupBatch(%#x) presence = %v, model %v",
						prefixLen, keyBits, probes[i], lf != nil, present)
				}
				if present && !reflect.DeepEqual(lf.Vals.Rows(), want) {
					t.Fatalf("k'=%d bits=%d: LookupBatch(%#x) rows differ", prefixLen, keyBits, probes[i])
				}
			})

			// Iterate: full ordered walk must equal the model and the
			// pointer baseline key-for-key, row-for-row.
			var gotKeys, baseKeys []uint64
			tr.Iterate(func(lf *Leaf) bool {
				gotKeys = append(gotKeys, lf.Key)
				if !reflect.DeepEqual(lf.Vals.Rows(), model[lf.Key]) {
					t.Fatalf("k'=%d bits=%d: Iterate rows for %#x differ", prefixLen, keyBits, lf.Key)
				}
				return true
			})
			base.Iterate(func(lf *ptrtree.Leaf) bool {
				baseKeys = append(baseKeys, lf.Key)
				return true
			})
			if !reflect.DeepEqual(gotKeys, model.sortedKeys()) {
				t.Fatalf("k'=%d bits=%d: Iterate order differs from model", prefixLen, keyBits)
			}
			if !reflect.DeepEqual(gotKeys, baseKeys) {
				t.Fatalf("k'=%d bits=%d: arena and pointer layouts iterate differently", prefixLen, keyBits)
			}

			// Range: random windows, including empty and full ones.
			for i := 0; i < 50; i++ {
				lo, hi := randKey(), randKey()
				if lo > hi {
					lo, hi = hi, lo
				}
				var got, want []uint64
				tr.Range(lo, hi, func(lf *Leaf) bool {
					got = append(got, lf.Key)
					return true
				})
				for _, k := range model.sortedKeys() {
					if k >= lo && k <= hi {
						want = append(want, k)
					}
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("k'=%d bits=%d: Range[%#x,%#x] = %d keys, model %d",
						prefixLen, keyBits, lo, hi, len(got), len(want))
				}
			}
		}
	}
}
