package prefixtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"qppt/internal/prefixtree/ptrtree"
)

// Randomized differential test for the arena-backed compact-pointer
// layout: identical Insert/InsertBatch/Lookup/Range/Iterate sequences are
// driven against the arena tree, a map[uint64][][]uint64 reference model,
// and the retained pointer-based baseline (package ptrtree). All three
// must agree on every observable result across tree geometries.

type refModel map[uint64][][]uint64

func (m refModel) insert(key uint64, row []uint64) {
	r := make([]uint64, len(row))
	copy(r, row)
	m[key] = append(m[key], r)
}

func (m refModel) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestDifferentialArenaVsModel(t *testing.T) {
	const payloadWidth = 2
	for _, prefixLen := range []uint{1, 4, 8, 16} {
		for _, keyBits := range []uint{8, 32, 64} {
			cfg := Config{PrefixLen: prefixLen, KeyBits: keyBits, PayloadWidth: payloadWidth}
			pcfg := ptrtree.Config{PrefixLen: prefixLen, KeyBits: keyBits, PayloadWidth: payloadWidth}
			tr := MustNew(cfg)
			base := ptrtree.MustNew(pcfg)
			model := refModel{}
			rng := rand.New(rand.NewSource(int64(prefixLen)<<8 | int64(keyBits)))
			keyMask := ^uint64(0)
			if keyBits < 64 {
				keyMask = uint64(1)<<keyBits - 1
			}
			randKey := func() uint64 {
				// Mix dense low keys with full-width random ones so both
				// shallow content nodes and deep collision paths arise.
				if rng.Intn(2) == 0 {
					return uint64(rng.Intn(300)) & keyMask
				}
				return rng.Uint64() & keyMask
			}
			randRow := func(k uint64) []uint64 {
				return []uint64{k, rng.Uint64()}
			}

			// Mixed single-key and batched inserts.
			for step := 0; step < 40; step++ {
				if rng.Intn(2) == 0 {
					for i := 0; i < 50; i++ {
						k := randKey()
						row := randRow(k)
						tr.Insert(k, row)
						base.Insert(k, row)
						model.insert(k, row)
					}
					continue
				}
				n := 1 + rng.Intn(600) // cross the DefaultBatchSize boundary
				keys := make([]uint64, n)
				rows := make([][]uint64, n)
				for i := range keys {
					keys[i] = randKey()
					rows[i] = randRow(keys[i])
				}
				tr.InsertBatch(keys, rows)
				base.InsertBatch(keys, rows)
				for i, k := range keys {
					model.insert(k, rows[i])
				}
			}

			// Counters.
			wantRows := 0
			for _, rows := range model {
				wantRows += len(rows)
			}
			if tr.Keys() != len(model) || tr.Rows() != wantRows {
				t.Fatalf("k'=%d bits=%d: Keys/Rows = %d/%d, model %d/%d",
					prefixLen, keyBits, tr.Keys(), tr.Rows(), len(model), wantRows)
			}

			// Lookup + LookupBatch: present and absent keys.
			probes := model.sortedKeys()
			for i := 0; i < 200; i++ {
				probes = append(probes, randKey())
			}
			for _, k := range probes {
				lf := tr.Lookup(k)
				want, present := model[k]
				if present != (lf != nil) {
					t.Fatalf("k'=%d bits=%d: Lookup(%#x) presence = %v, model %v",
						prefixLen, keyBits, k, lf != nil, present)
				}
				if present && !reflect.DeepEqual(lf.Vals.Rows(), want) {
					t.Fatalf("k'=%d bits=%d: Lookup(%#x) rows differ from model", prefixLen, keyBits, k)
				}
			}
			tr.LookupBatch(probes, func(i int, lf *Leaf) {
				want, present := model[probes[i]]
				if present != (lf != nil) {
					t.Fatalf("k'=%d bits=%d: LookupBatch(%#x) presence = %v, model %v",
						prefixLen, keyBits, probes[i], lf != nil, present)
				}
				if present && !reflect.DeepEqual(lf.Vals.Rows(), want) {
					t.Fatalf("k'=%d bits=%d: LookupBatch(%#x) rows differ", prefixLen, keyBits, probes[i])
				}
			})

			// Iterate: full ordered walk must equal the model and the
			// pointer baseline key-for-key, row-for-row.
			var gotKeys, baseKeys []uint64
			tr.Iterate(func(lf *Leaf) bool {
				gotKeys = append(gotKeys, lf.Key)
				if !reflect.DeepEqual(lf.Vals.Rows(), model[lf.Key]) {
					t.Fatalf("k'=%d bits=%d: Iterate rows for %#x differ", prefixLen, keyBits, lf.Key)
				}
				return true
			})
			base.Iterate(func(lf *ptrtree.Leaf) bool {
				baseKeys = append(baseKeys, lf.Key)
				return true
			})
			if !reflect.DeepEqual(gotKeys, model.sortedKeys()) {
				t.Fatalf("k'=%d bits=%d: Iterate order differs from model", prefixLen, keyBits)
			}
			if !reflect.DeepEqual(gotKeys, baseKeys) {
				t.Fatalf("k'=%d bits=%d: arena and pointer layouts iterate differently", prefixLen, keyBits)
			}

			// Range: random windows, including empty and full ones.
			for i := 0; i < 50; i++ {
				lo, hi := randKey(), randKey()
				if lo > hi {
					lo, hi = hi, lo
				}
				var got, want []uint64
				tr.Range(lo, hi, func(lf *Leaf) bool {
					got = append(got, lf.Key)
					return true
				})
				for _, k := range model.sortedKeys() {
					if k >= lo && k <= hi {
						want = append(want, k)
					}
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("k'=%d bits=%d: Range[%#x,%#x] = %d keys, model %d",
						prefixLen, keyBits, lo, hi, len(got), len(want))
				}
			}
		}
	}
}
