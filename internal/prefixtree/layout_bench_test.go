package prefixtree

import (
	"math/rand"
	"testing"

	"qppt/internal/kernel"
	"qppt/internal/prefixtree/ptrtree"
)

// Layout benchmarks: the arena-backed compact-pointer tree against the
// retained pointer baseline (package ptrtree), on the hot batched paths
// the join operators drive. ReportAllocs makes the allocation story part
// of the regression surface: batched lookups must stay allocation-free
// (pooled scratch) and batched index builds must allocate chunks, not
// per-key objects.

const benchTreeKeys = 1 << 17

func benchKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

func benchRows(keys []uint64) [][]uint64 {
	backing := make([]uint64, len(keys))
	rows := make([][]uint64, len(keys))
	for i := range keys {
		backing[i] = keys[i]
		rows[i] = backing[i : i+1 : i+1]
	}
	return rows
}

func buildArena(keys []uint64, rows [][]uint64) *Tree {
	t := MustNew(Config{PayloadWidth: 1})
	for off := 0; off < len(keys); off += DefaultBatchSize {
		end := min(off+DefaultBatchSize, len(keys))
		t.InsertBatch(keys[off:end], rows[off:end])
	}
	return t
}

func buildPointer(keys []uint64, rows [][]uint64) *ptrtree.Tree {
	t := ptrtree.MustNew(ptrtree.Config{PayloadWidth: 1})
	for off := 0; off < len(keys); off += DefaultBatchSize {
		end := min(off+DefaultBatchSize, len(keys))
		t.InsertBatch(keys[off:end], rows[off:end])
	}
	return t
}

// BenchmarkInsertBatch builds a full index per iteration through the
// batched insert path; bytes/op is the allocation cost of one index
// build, the headline number of the layout ablation.
func BenchmarkInsertBatch(b *testing.B) {
	keys := benchKeys(benchTreeKeys, 101)
	rows := benchRows(keys)
	b.Run("arena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildArena(keys, rows)
		}
	})
	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildPointer(keys, rows)
		}
	})
}

// BenchmarkLookupBatch probes a pre-built index with batches of present
// and absent keys; the arena layout must report 0 allocs/op (pooled job
// scratch).
func BenchmarkLookupBatch(b *testing.B) {
	keys := benchKeys(benchTreeKeys, 101)
	rows := benchRows(keys)
	probes := append(append([]uint64{}, keys[:benchTreeKeys/2]...),
		benchKeys(benchTreeKeys/2, 103)...)
	var sink uint64
	b.Run("arena", func(b *testing.B) {
		t := buildArena(keys, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(probes); off += DefaultBatchSize {
				end := min(off+DefaultBatchSize, len(probes))
				t.LookupBatch(probes[off:end], func(_ int, lf *Leaf) {
					if lf != nil {
						sink += lf.Key
					}
				})
			}
		}
	})
	b.Run("pointer", func(b *testing.B) {
		t := buildPointer(keys, rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for off := 0; off < len(probes); off += DefaultBatchSize {
				end := min(off+DefaultBatchSize, len(probes))
				t.LookupBatch(probes[off:end], func(_ int, lf *ptrtree.Leaf) {
					if lf != nil {
						sink += lf.Key
					}
				})
			}
		}
	})
	_ = sink
}

// BenchmarkSyncScan joins two half-overlapping indexes with the
// synchronous index scan — the skip-heavy kernel whose bucket walks the
// compact layout accelerates.
func BenchmarkSyncScan(b *testing.B) {
	left := benchKeys(benchTreeKeys, 101)
	right := append(append([]uint64{}, left[:benchTreeKeys/2]...),
		benchKeys(benchTreeKeys/2, 107)...)
	var matches int
	b.Run("arena", func(b *testing.B) {
		ta := buildArena(left, benchRows(left))
		tb := buildArena(right, benchRows(right))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matches = 0
			SyncScan(ta, tb, func(la, lb *Leaf) bool { matches++; return true })
		}
	})
	b.Run("pointer", func(b *testing.B) {
		ta := buildPointer(left, benchRows(left))
		tb := buildPointer(right, benchRows(right))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			matches = 0
			ptrtree.SyncScan(ta, tb, func(la, lb *ptrtree.Leaf) bool { matches++; return true })
		}
	})
	_ = matches
}

// TestLookupBatchAllocationFree pins the pooled-scratch satellite: after
// warm-up, batched lookups on the arena tree allocate nothing.
func TestLookupBatchAllocationFree(t *testing.T) {
	if kernel.RaceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector, so pooled scratch allocates by design")
	}
	keys := benchKeys(1<<12, 101)
	tr := buildArena(keys, benchRows(keys))
	tr.LookupBatch(keys[:DefaultBatchSize], func(int, *Leaf) {}) // warm the pool
	var sink uint64
	allocs := testing.AllocsPerRun(20, func() {
		tr.LookupBatch(keys[:DefaultBatchSize], func(_ int, lf *Leaf) {
			if lf != nil {
				sink += lf.Key
			}
		})
	})
	if allocs != 0 {
		t.Fatalf("LookupBatch allocates %.1f objects per batch, want 0", allocs)
	}
	_ = sink
}
