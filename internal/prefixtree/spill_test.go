package prefixtree

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"os"
	"reflect"
	"testing"
)

// Freeze must detach the tree's heap footprint and Thaw must restore an
// index that answers every observable query identically — including after
// deletes punched holes into the node and leaf free lists, and across
// another mutation + freeze cycle.
func TestFreezeThawRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{PrefixLen: 4, KeyBits: 64, PayloadWidth: 2},
		{PrefixLen: 8, KeyBits: 32, PayloadWidth: 1},
		{PrefixLen: 4, KeyBits: 16, PayloadWidth: 0}, // existence index
	} {
		tr := MustNew(cfg)
		model := map[uint64][][]uint64{}
		rng := rand.New(rand.NewSource(int64(cfg.PrefixLen)))
		keyMask := uint64(1)<<cfg.KeyBits - 1
		if cfg.KeyBits == 64 {
			keyMask = ^uint64(0)
		}
		insert := func(n int) {
			for i := 0; i < n; i++ {
				k := rng.Uint64() & keyMask
				if rng.Intn(2) == 0 {
					k = uint64(rng.Intn(500)) & keyMask
				}
				row := make([]uint64, cfg.PayloadWidth)
				for j := range row {
					row[j] = rng.Uint64()
				}
				tr.Insert(k, row)
				model[k] = append(model[k], row)
			}
		}
		insert(3000)
		// Punch holes so free lists round-trip.
		deleted := 0
		for k := range model {
			if deleted >= 100 {
				break
			}
			tr.Delete(k)
			delete(model, k)
			deleted++
		}

		check := func(stage string) {
			t.Helper()
			if tr.Keys() != len(model) {
				t.Fatalf("%s: Keys = %d, want %d", stage, tr.Keys(), len(model))
			}
			for k, want := range model {
				lf := tr.Lookup(k)
				if lf == nil {
					t.Fatalf("%s: key %#x missing", stage, k)
				}
				if cfg.PayloadWidth > 0 && !reflect.DeepEqual(lf.Vals.Rows(), want) {
					t.Fatalf("%s: rows for %#x differ", stage, k)
				}
				if lf.Vals.Len() != len(want) {
					t.Fatalf("%s: %#x has %d rows, want %d", stage, k, lf.Vals.Len(), len(want))
				}
			}
			prev := uint64(0)
			first := true
			tr.Iterate(func(lf *Leaf) bool {
				if !first && lf.Key <= prev {
					t.Fatalf("%s: iteration out of order", stage)
				}
				prev, first = lf.Key, false
				if _, ok := model[lf.Key]; !ok {
					t.Fatalf("%s: iteration visits deleted key %#x", stage, lf.Key)
				}
				return true
			})
		}
		check("before freeze")

		resident := tr.Bytes()
		var buf bytes.Buffer
		if err := tr.Freeze(&buf); err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		if !tr.Frozen() {
			t.Fatal("tree not marked frozen")
		}
		if tr.Bytes() >= resident/4 {
			t.Fatalf("frozen tree still holds %d of %d bytes", tr.Bytes(), resident)
		}
		if tr.Keys() != len(model) {
			t.Fatalf("frozen tree lost counters: Keys = %d", tr.Keys())
		}
		if err := tr.Freeze(&buf); err == nil {
			t.Fatal("double Freeze did not fail")
		}

		if err := tr.Thaw(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("Thaw: %v", err)
		}
		if tr.Frozen() {
			t.Fatal("thawed tree still marked frozen")
		}
		check("after thaw")

		// The thawed tree must keep working as a live index: mutate, then
		// freeze/thaw again to prove the free lists survived.
		insert(500)
		check("after post-thaw inserts")
		var buf2 bytes.Buffer
		if err := tr.Freeze(&buf2); err != nil {
			t.Fatalf("second Freeze: %v", err)
		}
		if err := tr.Thaw(&buf2); err != nil {
			t.Fatalf("second Thaw: %v", err)
		}
		check("after second thaw")
	}
}

// A folding (aggregating) tree stores exactly one row per key; the row
// must survive the spill byte-for-byte.
func TestFreezeThawFoldingTree(t *testing.T) {
	tr := MustNew(Config{PrefixLen: 4, KeyBits: 32, PayloadWidth: 1,
		Fold: func(dst, src []uint64) { dst[0] += src[0] }})
	want := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(i % 700)
		tr.Insert(k, []uint64{uint64(i)})
		want[k] += uint64(i)
	}
	var buf bytes.Buffer
	if err := tr.Freeze(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Thaw(&buf); err != nil {
		t.Fatal(err)
	}
	for k, sum := range want {
		lf := tr.Lookup(k)
		if lf == nil || lf.Vals.Len() != 1 || lf.Vals.First()[0] != sum {
			t.Fatalf("key %d: folded row lost (leaf %v)", k, lf)
		}
	}
}

// freezeToFile freezes tr into a temp file and returns it rewound — the
// ReadSeeker shape ThawRange consumes.
func freezeToFile(t *testing.T, tr *Tree) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "freeze-*.spill")
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	if err := tr.Freeze(bw); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	return f
}

// ThawRange must restore exactly the leaf chunks the key range touches:
// in-range queries answer identically, the bytes read stay well below a
// full thaw, and a follow-up top-up (and finally a full-span call)
// completes the tree in place.
func TestThawRangePartialRestore(t *testing.T) {
	const n = 40000 // ~10 leaf chunks
	tr := MustNew(Config{PrefixLen: 4, KeyBits: 32, PayloadWidth: 1})
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i), []uint64{uint64(i) * 3})
	}
	full := MustNew(Config{PrefixLen: 4, KeyBits: 32, PayloadWidth: 1})
	for i := 0; i < n; i++ {
		full.Insert(uint64(i), []uint64{uint64(i) * 3})
	}
	f := freezeToFile(t, tr)
	defer f.Close()
	fi, _ := f.Stat()

	lo, hi := uint64(1000), uint64(2000)
	nRead, fullyThawed, err := tr.ThawRange(f, lo, hi)
	if err != nil {
		t.Fatalf("ThawRange: %v", err)
	}
	if fullyThawed {
		t.Fatal("narrow range reported a full restore")
	}
	if !tr.Partial() {
		t.Fatal("tree not marked partial")
	}
	if nRead >= fi.Size()/2 {
		t.Fatalf("partial thaw read %d of %d file bytes", nRead, fi.Size())
	}
	got := 0
	tr.Range(lo, hi, func(lf *Leaf) bool {
		if lf.Vals.First()[0] != lf.Key*3 {
			t.Fatalf("key %d: wrong payload after partial thaw", lf.Key)
		}
		got++
		return true
	})
	if got != int(hi-lo+1) {
		t.Fatalf("Range after partial thaw visited %d keys, want %d", got, hi-lo+1)
	}

	// Top-up with a second, disjoint range.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.ThawRange(f, 30000, 31000); err != nil {
		t.Fatalf("top-up ThawRange: %v", err)
	}
	got = 0
	tr.Range(30000, 31000, func(lf *Leaf) bool { got++; return lf.Vals.First()[0] == lf.Key*3 })
	if got != 1001 {
		t.Fatalf("top-up range visited %d keys", got)
	}

	// Full-span call completes the tree; it must then equal the original.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	_, fullyThawed, err = tr.ThawRange(f, 0, ^uint64(0)>>32)
	if err != nil {
		t.Fatal(err)
	}
	if !fullyThawed || tr.Partial() {
		t.Fatal("full-span ThawRange left the tree partial")
	}
	same := true
	tr.Iterate(func(lf *Leaf) bool {
		w := full.Lookup(lf.Key)
		same = w != nil && w.Vals.First()[0] == lf.Vals.First()[0]
		return same
	})
	if !same || tr.Keys() != full.Keys() {
		t.Fatal("completed tree differs from the never-frozen one")
	}
}
