package prefixtree

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// Freeze must detach the tree's heap footprint and Thaw must restore an
// index that answers every observable query identically — including after
// deletes punched holes into the node and leaf free lists, and across
// another mutation + freeze cycle.
func TestFreezeThawRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{PrefixLen: 4, KeyBits: 64, PayloadWidth: 2},
		{PrefixLen: 8, KeyBits: 32, PayloadWidth: 1},
		{PrefixLen: 4, KeyBits: 16, PayloadWidth: 0}, // existence index
	} {
		tr := MustNew(cfg)
		model := map[uint64][][]uint64{}
		rng := rand.New(rand.NewSource(int64(cfg.PrefixLen)))
		keyMask := uint64(1)<<cfg.KeyBits - 1
		if cfg.KeyBits == 64 {
			keyMask = ^uint64(0)
		}
		insert := func(n int) {
			for i := 0; i < n; i++ {
				k := rng.Uint64() & keyMask
				if rng.Intn(2) == 0 {
					k = uint64(rng.Intn(500)) & keyMask
				}
				row := make([]uint64, cfg.PayloadWidth)
				for j := range row {
					row[j] = rng.Uint64()
				}
				tr.Insert(k, row)
				model[k] = append(model[k], row)
			}
		}
		insert(3000)
		// Punch holes so free lists round-trip.
		deleted := 0
		for k := range model {
			if deleted >= 100 {
				break
			}
			tr.Delete(k)
			delete(model, k)
			deleted++
		}

		check := func(stage string) {
			t.Helper()
			if tr.Keys() != len(model) {
				t.Fatalf("%s: Keys = %d, want %d", stage, tr.Keys(), len(model))
			}
			for k, want := range model {
				lf := tr.Lookup(k)
				if lf == nil {
					t.Fatalf("%s: key %#x missing", stage, k)
				}
				if cfg.PayloadWidth > 0 && !reflect.DeepEqual(lf.Vals.Rows(), want) {
					t.Fatalf("%s: rows for %#x differ", stage, k)
				}
				if lf.Vals.Len() != len(want) {
					t.Fatalf("%s: %#x has %d rows, want %d", stage, k, lf.Vals.Len(), len(want))
				}
			}
			prev := uint64(0)
			first := true
			tr.Iterate(func(lf *Leaf) bool {
				if !first && lf.Key <= prev {
					t.Fatalf("%s: iteration out of order", stage)
				}
				prev, first = lf.Key, false
				if _, ok := model[lf.Key]; !ok {
					t.Fatalf("%s: iteration visits deleted key %#x", stage, lf.Key)
				}
				return true
			})
		}
		check("before freeze")

		resident := tr.Bytes()
		var buf bytes.Buffer
		if err := tr.Freeze(&buf); err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		if !tr.Frozen() {
			t.Fatal("tree not marked frozen")
		}
		if tr.Bytes() >= resident/4 {
			t.Fatalf("frozen tree still holds %d of %d bytes", tr.Bytes(), resident)
		}
		if tr.Keys() != len(model) {
			t.Fatalf("frozen tree lost counters: Keys = %d", tr.Keys())
		}
		if err := tr.Freeze(&buf); err == nil {
			t.Fatal("double Freeze did not fail")
		}

		if err := tr.Thaw(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("Thaw: %v", err)
		}
		if tr.Frozen() {
			t.Fatal("thawed tree still marked frozen")
		}
		check("after thaw")

		// The thawed tree must keep working as a live index: mutate, then
		// freeze/thaw again to prove the free lists survived.
		insert(500)
		check("after post-thaw inserts")
		var buf2 bytes.Buffer
		if err := tr.Freeze(&buf2); err != nil {
			t.Fatalf("second Freeze: %v", err)
		}
		if err := tr.Thaw(&buf2); err != nil {
			t.Fatalf("second Thaw: %v", err)
		}
		check("after second thaw")
	}
}

// A folding (aggregating) tree stores exactly one row per key; the row
// must survive the spill byte-for-byte.
func TestFreezeThawFoldingTree(t *testing.T) {
	tr := MustNew(Config{PrefixLen: 4, KeyBits: 32, PayloadWidth: 1,
		Fold: func(dst, src []uint64) { dst[0] += src[0] }})
	want := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(i % 700)
		tr.Insert(k, []uint64{uint64(i)})
		want[k] += uint64(i)
	}
	var buf bytes.Buffer
	if err := tr.Freeze(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Thaw(&buf); err != nil {
		t.Fatal(err)
	}
	for k, sum := range want {
		lf := tr.Lookup(k)
		if lf == nil || lf.Vals.Len() != 1 || lf.Vals.First()[0] != sum {
			t.Fatalf("key %d: folded row lost (leaf %v)", k, lf)
		}
	}
}
