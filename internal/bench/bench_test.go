package bench

import (
	"testing"

	"qppt/internal/core"
	"qppt/internal/ssb"
)

// The harness tests run everything at toy sizes: they guard the plumbing
// (every figure function runs, returns the right rows, errors propagate),
// not the numbers.

func TestFigure3Harness(t *testing.T) {
	sizes := []int{20000}
	for _, rows := range [][]Fig3Row{Figure3a(sizes), Figure3b(sizes)} {
		if len(rows) != len(Fig3Structures) {
			t.Fatalf("%d rows, want %d", len(rows), len(Fig3Structures))
		}
		for _, r := range rows {
			if r.NsPerKey <= 0 {
				t.Errorf("%s: non-positive ns/key", r.Structure)
			}
			if r.Size != sizes[0] {
				t.Errorf("%s: size %d", r.Structure, r.Size)
			}
		}
	}
	if Figure3aOne("KISS", 10000) <= 0 || Figure3bOne("PT4", 10000) <= 0 {
		t.Error("one-cell helpers returned non-positive timings")
	}
}

func TestQueryFigureHarness(t *testing.T) {
	ds := ssb.MustLoad(ssb.GenConfig{SF: 0.005, Seed: 3})
	if err := WarmupQueries(ds); err != nil {
		t.Fatal(err)
	}
	f7, err := Figure7(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) != 13*3 {
		t.Fatalf("figure 7 has %d rows, want 39", len(f7))
	}
	// Engines must agree on result cardinality per query.
	byQuery := map[string]int{}
	for _, r := range f7 {
		if prev, seen := byQuery[r.Query]; seen && prev != r.Rows {
			t.Errorf("Q%s: engines returned %d vs %d rows", r.Query, prev, r.Rows)
		}
		byQuery[r.Query] = r.Rows
	}
	f8, err := Figure8(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8) != 4 {
		t.Fatalf("figure 8 has %d rows", len(f8))
	}
	share, err := Figure8SelectionShare(ds)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0 || share > 1 {
		t.Fatalf("selection share = %f", share)
	}
	f9, err := Figure9(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9) != 6 {
		t.Fatalf("figure 9 has %d rows", len(f9))
	}
	jb, err := AblationJoinBuffer(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(jb) != 4 {
		t.Fatalf("joinbuffer ablation has %d rows", len(jb))
	}
	aw, err := AblationWorkers(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(aw) != 8 {
		t.Fatalf("workers ablation has %d rows", len(aw))
	}
	// Worker-pool size must never change a query result.
	awRows := map[string]int{}
	for _, r := range aw {
		if prev, seen := awRows[r.Query]; seen && prev != r.Rows {
			t.Errorf("Q%s: worker sweep returned %d vs %d rows", r.Query, prev, r.Rows)
		}
		awRows[r.Query] = r.Rows
	}
	// A parallel Figure 7 run must agree with the serial engines row for row.
	f7w, err := Figure7Exec(ds, 1, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f7w {
		if prev, seen := byQuery[r.Query]; seen && prev != r.Rows {
			t.Errorf("Q%s: workers=4 returned %d rows, serial %d", r.Query, r.Rows, prev)
		}
	}
}

func TestAblationHarness(t *testing.T) {
	if rows := AblationKPrime(5000); len(rows) != 6 {
		t.Fatalf("kprime rows = %d", len(rows))
	}
	comp := AblationKISSCompression(5000)
	if len(comp) != 4 {
		t.Fatalf("compression rows = %d", len(comp))
	}
	for _, r := range comp {
		if r.Dist == "dense" && r.Compress && r.RCUCopies == 0 {
			t.Error("dense compressed inserts reported no RCU copies")
		}
		if !r.Compress && r.RCUCopies != 0 {
			t.Error("uncompressed inserts reported RCU copies")
		}
	}
	dup := AblationDuplicates(10000, 2, 2)
	if len(dup) != 2 || dup[0].Bytes >= dup[1].Bytes {
		t.Fatalf("duplicates ablation: %+v", dup)
	}
	if rows := AblationBatchSize(20000); len(rows) != 7 {
		t.Fatalf("batch rows = %d", len(rows))
	}
}

// The fusion ablation must produce one row per SSB query, every fused
// result bit-identical to the materialized one, and the fused-edge
// counter moving on well over half the decomposed suite.
func TestFusionAblationHarness(t *testing.T) {
	ds := ssb.MustLoad(ssb.GenConfig{SF: 0.005, Seed: 7})
	if err := WarmupQueries(ds); err != nil {
		t.Fatal(err)
	}
	rows, err := AblationFusion(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("fusion ablation has %d rows, want 13", len(rows))
	}
	fused, streamed := 0, 0
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("Q%s: fused result not identical to materialized", r.Query)
		}
		if r.FusedMillis <= 0 || r.UnfusedMillis <= 0 {
			t.Errorf("Q%s: non-positive timing %+v", r.Query, r)
		}
		if r.FusedEdges > 0 {
			fused++
		}
		streamed += r.TuplesStreamed
	}
	if fused < 8 {
		t.Fatalf("only %d of 13 queries fused any edge, want >= 8", fused)
	}
	// A fused edge on an empty selection legitimately streams nothing
	// (tiny scale factors), but the suite as a whole must stream.
	if streamed == 0 {
		t.Fatal("no query streamed any combinations through a fused edge")
	}
}

// The memory-lifecycle ablation must produce one row per configuration
// with the recycler and restore-path counters actually moving where the
// configuration enables them.
func TestMemLifecycleHarness(t *testing.T) {
	ds := ssb.MustLoad(ssb.GenConfig{SF: 0.005, Seed: 5})
	if err := WarmupQueries(ds); err != nil {
		t.Fatal(err)
	}
	rows, err := AblationMemLifecycle(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("memlife ablation has %d rows, want 5", len(rows))
	}
	byCfg := map[string]MemLifeRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	if byCfg["recycle"].ChunksReused == 0 {
		t.Error("recycle config reused no chunks")
	}
	if byCfg["spill-all"].ThawBytesRead == 0 {
		t.Error("spill-all config read no thaw bytes")
	}
	if mm := byCfg["spill-all+mmap"].ThawBytesRead; mm >= byCfg["spill-all"].ThawBytesRead {
		t.Errorf("mmap restore read %d bytes, copy restore %d — no zero-copy savings",
			mm, byCfg["spill-all"].ThawBytesRead)
	}
}
