package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"qppt"
	"qppt/internal/core"
	"qppt/internal/ssb"
	"qppt/internal/wire"
	"qppt/internal/wire/client"
)

// ServeRow is one serving-tier benchmark configuration: N concurrent
// wire-protocol clients driving the 13-query SSB suite through one
// engine, with the admission gate and per-connection statement caches
// in the path.
type ServeRow struct {
	Clients  int `json:"clients"`
	MaxPlans int `json:"maxplans,omitempty"`
	// Queries counts completed queries across all clients; Shed the
	// queries the admission gate rejected with ErrOverloaded.
	Queries int64 `json:"queries"`
	Shed    int64 `json:"shed,omitempty"`
	// Millis is the wall clock for the whole run, QPS the completed
	// queries per second it implies.
	Millis float64 `json:"millis"`
	QPS    float64 `json:"qps"`
	// AvgWaitMicros is the mean admission-queue wait of the queries that
	// queued; StmtHits the statement-cache hits the run produced.
	AvgWaitMicros float64 `json:"avg_wait_micros,omitempty"`
	StmtHits      int64   `json:"stmt_hits"`
}

// ServeBench sweeps concurrent client counts over the serving tier: a
// fresh engine + wire server per row, clients connected over in-process
// pipes, each running the full SSB suite `passes` times. exec supplies
// the engine's execution configuration; maxPlans>0 enables the
// admission gate.
//
// Queue waits appear only when query executions overlap at the gate. On
// a single-CPU machine with a scale factor small enough that every
// query is pure in-memory compute, admission arrivals serialize behind
// the running plan and AvgWaitMicros stays 0 — that is the engine
// keeping up, not the gate malfunctioning. Larger scale factors, spill
// budgets, or more processors all produce the overlap that queues.
func ServeBench(ds *ssb.Dataset, exec core.Options, maxPlans int, clientCounts []int, passes int) ([]ServeRow, error) {
	rows := make([]ServeRow, 0, len(clientCounts))
	for _, n := range clientCounts {
		row, err := serveOnce(ds, exec, maxPlans, n, passes)
		if err != nil {
			return nil, fmt.Errorf("serve bench with %d clients: %w", n, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func serveOnce(ds *ssb.Dataset, exec core.Options, maxPlans, clients, passes int) (ServeRow, error) {
	eng, err := qppt.New(qppt.Config{
		Workers:          exec.Workers,
		MorselsPerWorker: exec.MorselsPerWorker,
		BufferSize:       exec.BufferSize,
		MemBudget:        exec.MemBudget,
		MmapThaw:         exec.MmapThaw,
		DisableFusion:    exec.NoFuse,
		ProbeBatch:       exec.ProbeBatch,
		MaxPlans:         maxPlans,
	})
	if err != nil {
		return ServeRow{}, err
	}
	defer eng.Close()
	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()

	// Warm pass: build the plans' base indexes once so the timed run
	// measures serving, not first-touch catalog work.
	warm, err := client.NewPipe(srv)
	if err != nil {
		return ServeRow{}, err
	}
	for _, qid := range ssb.QueryIDs {
		if _, err := warm.Query(ssb.SQLTexts[qid]); err != nil {
			warm.Close()
			return ServeRow{}, err
		}
	}
	warm.Close()
	base := eng.Stats() // exclude the warm pass from the counters

	conns := make([]*client.Conn, clients)
	for i := range conns {
		if conns[i], err = client.NewPipe(srv); err != nil {
			return ServeRow{}, err
		}
		defer conns[i].Close()
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int64
		shed     int64
		firstErr error
	)
	t0 := time.Now()
	for _, cc := range conns {
		wg.Add(1)
		go func(cc *client.Conn) {
			defer wg.Done()
			for p := 0; p < passes; p++ {
				for _, qid := range ssb.QueryIDs {
					_, err := cc.Query(ssb.SQLTexts[qid])
					mu.Lock()
					switch {
					case err == nil:
						done++
					case errors.Is(err, qppt.ErrOverloaded):
						shed++
					default:
						if firstErr == nil {
							firstErr = fmt.Errorf("%s: %w", qid, err)
						}
					}
					mu.Unlock()
				}
			}
		}(cc)
	}
	wg.Wait()
	wall := time.Since(t0)
	if firstErr != nil {
		return ServeRow{}, firstErr
	}

	st := eng.Stats()
	row := ServeRow{
		Clients:  clients,
		MaxPlans: maxPlans,
		Queries:  done,
		Shed:     shed,
		Millis:   float64(wall.Nanoseconds()) / 1e6,
		QPS:      float64(done) / wall.Seconds(),
		StmtHits: st.StmtCache.Hits - base.StmtCache.Hits,
	}
	if waited := st.Admission.Waited - base.Admission.Waited; waited > 0 {
		row.AvgWaitMicros = float64((st.Admission.WaitTime - base.Admission.WaitTime).Microseconds()) / float64(waited)
	}
	return row, nil
}
