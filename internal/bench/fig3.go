// Package bench regenerates every table and figure of the paper's
// evaluation: Figure 3 (index structures vs hash tables), Figure 7 (all
// thirteen SSB queries on three engines), Figure 8 (select-join ablation
// on Q1.1), Figure 9 (multi-way join arity ablation on Q4.1), plus the
// design-choice ablations DESIGN.md calls out (joinbuffer size, prefix
// length k′, KISS compression, duplicate layout, batch size).
//
// Absolute numbers will differ from the paper (pure Go vs C on a 2012
// Xeon); the harness exists to reproduce the *shapes*: orderings,
// approximate factors, and crossovers.
package bench

import (
	"math/rand"
	"time"

	"qppt/internal/hashbase"
	"qppt/internal/kisstree"
	"qppt/internal/prefixtree"
)

// Fig3Structures lists the competitors of Figure 3 in plot order: the
// paper's five series plus OPEN, a modern open-addressing table the paper
// did not have (both GLib and Boost were node-based chained tables in
// 2012) — included as a stronger baseline and discussed in EXPERIMENTS.md.
var Fig3Structures = []string{"PT4", "GLIB", "BOOST", "OPEN", "KISS", "KISS Batched"}

// A Fig3Row is one point of Figure 3: nanoseconds per key for one
// structure at one index size.
type Fig3Row struct {
	Structure string
	Size      int
	NsPerKey  float64
}

// fig3Keys builds the paper's workload: keys randomly picked from a dense
// sequential range [0, n).
func fig3Keys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

const fig3Batch = prefixtree.DefaultBatchSize

// Figure3a measures insert/update performance (Figure 3(a)): the time per
// key to build an index of the given sizes, for the prefix tree (k′=4),
// the GLib- and Boost-style chained hash tables, the extra open-addressing
// baseline, and the KISS-Tree with and without batch processing.
func Figure3a(sizes []int) []Fig3Row {
	var out []Fig3Row
	for _, n := range sizes {
		keys := fig3Keys(n, 31)
		for _, structure := range Fig3Structures {
			ns := timePerKey(n, func() {
				insertAll(structure, keys)
			})
			out = append(out, Fig3Row{Structure: structure, Size: n, NsPerKey: ns})
		}
	}
	return out
}

// Figure3b measures lookup performance (Figure 3(b)): the time per key to
// look up every key of a pre-built index in random order.
func Figure3b(sizes []int) []Fig3Row {
	var out []Fig3Row
	for _, n := range sizes {
		keys := fig3Keys(n, 33)
		probes := fig3Keys(n, 35)
		for _, structure := range Fig3Structures {
			idx := buildFor(structure, keys)
			ns := timePerKey(n, func() { lookupAll(structure, idx, probes) })
			out = append(out, Fig3Row{Structure: structure, Size: n, NsPerKey: ns})
		}
	}
	return out
}

// Figure3aOne measures one Figure 3(a) cell: insert ns/key for one
// structure at one size (the testing.B entry point).
func Figure3aOne(structure string, n int) float64 {
	keys := fig3Keys(n, 31)
	return timePerKey(n, func() { insertAll(structure, keys) })
}

// Figure3bOne measures one Figure 3(b) cell: lookup ns/key.
func Figure3bOne(structure string, n int) float64 {
	keys := fig3Keys(n, 33)
	probes := fig3Keys(n, 35)
	idx := buildFor(structure, keys)
	return timePerKey(n, func() { lookupAll(structure, idx, probes) })
}

func timePerKey(n int, fn func()) float64 {
	t0 := time.Now()
	fn()
	return float64(time.Since(t0).Nanoseconds()) / float64(n)
}

// insertAll builds an index of the structure over keys (discarded after).
func insertAll(structure string, keys []uint64) {
	buildFor(structure, keys)
}

func buildFor(structure string, keys []uint64) any {
	switch structure {
	case "PT4":
		t := prefixtree.MustNew(prefixtree.Config{PrefixLen: 4, KeyBits: 32, PayloadWidth: 1})
		row := []uint64{0}
		for _, k := range keys {
			row[0] = k
			t.Insert(k, row)
		}
		return t
	case "GLIB":
		m := hashbase.NewChainedMap(0)
		for _, k := range keys {
			m.Insert(k, k)
		}
		return m
	case "BOOST":
		m := hashbase.NewBoostMap(0)
		for _, k := range keys {
			m.Insert(k, k)
		}
		return m
	case "OPEN":
		m := hashbase.NewOpenMap(0)
		for _, k := range keys {
			m.Insert(k, k)
		}
		return m
	case "KISS":
		t := kisstree.MustNew(kisstree.Config{PayloadWidth: 1})
		row := []uint64{0}
		for _, k := range keys {
			row[0] = k
			t.Insert(k, row)
		}
		return t
	case "KISS Batched":
		t := kisstree.MustNew(kisstree.Config{PayloadWidth: 1})
		rows := make([][]uint64, fig3Batch)
		arena := make([]uint64, fig3Batch)
		for i := range rows {
			rows[i] = arena[i : i+1]
		}
		for off := 0; off < len(keys); off += fig3Batch {
			end := min(off+fig3Batch, len(keys))
			for i := off; i < end; i++ {
				arena[i-off] = keys[i]
			}
			t.InsertBatch(keys[off:end], rows[:end-off])
		}
		return t
	}
	panic("bench: unknown structure " + structure)
}

// sink prevents dead-code elimination of lookup results.
var sink uint64

func lookupAll(structure string, idx any, probes []uint64) {
	switch structure {
	case "PT4":
		t := idx.(*prefixtree.Tree)
		for _, k := range probes {
			if lf := t.Lookup(k); lf != nil {
				sink += lf.Key
			}
		}
	case "GLIB":
		m := idx.(*hashbase.ChainedMap)
		for _, k := range probes {
			if v, ok := m.Lookup(k); ok {
				sink += v
			}
		}
	case "BOOST":
		m := idx.(*hashbase.ChainedMap)
		for _, k := range probes {
			if v, ok := m.Lookup(k); ok {
				sink += v
			}
		}
	case "OPEN":
		m := idx.(*hashbase.OpenMap)
		for _, k := range probes {
			if v, ok := m.Lookup(k); ok {
				sink += v
			}
		}
	case "KISS":
		t := idx.(*kisstree.Tree)
		for _, k := range probes {
			if lf := t.Lookup(k); lf != nil {
				sink += lf.Key
			}
		}
	case "KISS Batched":
		t := idx.(*kisstree.Tree)
		for off := 0; off < len(probes); off += fig3Batch {
			end := min(off+fig3Batch, len(probes))
			t.LookupBatch(probes[off:end], func(i int, lf *kisstree.Leaf) {
				if lf != nil {
					sink += lf.Key
				}
			})
		}
	default:
		panic("bench: unknown structure " + structure)
	}
}
