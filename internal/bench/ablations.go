package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"

	"qppt/internal/core"
	"qppt/internal/duplist"
	"qppt/internal/kernel"
	"qppt/internal/kisstree"
	"qppt/internal/prefixtree"
	"qppt/internal/ssb"
)

// AblationJoinBuffer sweeps the joinbuffer/selectionbuffer size on SSB
// query 2.3 — the knob the paper's demonstrator exposes (Appendix A):
// size 1 disables batching; too-small and too-large buffers both hurt.
func AblationJoinBuffer(ds *ssb.Dataset, reps int) ([]QueryTime, error) {
	var out []QueryTime
	for _, size := range []int{1, 64, 512, 2048} {
		size := size
		var err error
		ms, rows := timeIt(reps, func() int {
			r, _, e := ds.RunQPPT("2.3", ssb.PlanOptions{
				UseSelectJoin: true,
				Exec:          core.Options{BufferSize: size},
			})
			if e != nil {
				err = e
				return 0
			}
			return len(r.Rows)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, QueryTime{
			Query: "2.3", Engine: EngineQPPT,
			Config: fmt.Sprintf("joinbuffer=%d", size), Millis: ms, Rows: rows,
		})
	}
	return out, nil
}

// AblationWorkers sweeps the shared worker pool size (morsel-driven
// parallelism, paper Section 7) on the join-heavy Q4.1 and the
// selection-heavy Q1.1. Workers=1 is the paper's single-threaded mode;
// larger pools split every operator into work-stealing key-range morsels
// and merge the partial outputs partition-wise in parallel. On a
// single-core host the sweep degenerates to measuring scheduling
// overhead, which is itself worth tracking.
func AblationWorkers(ds *ssb.Dataset, reps int) ([]QueryTime, error) {
	var out []QueryTime
	for _, qid := range []string{"1.1", "4.1"} {
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			var err error
			ms, rows := timeIt(reps, func() int {
				r, _, e := ds.RunQPPT(qid, ssb.PlanOptions{
					UseSelectJoin: true,
					Exec:          core.Options{Workers: workers},
				})
				if e != nil {
					err = e
					return 0
				}
				return len(r.Rows)
			})
			if err != nil {
				return nil, err
			}
			out = append(out, QueryTime{
				Query: qid, Engine: EngineQPPT,
				Config: fmt.Sprintf("workers=%d", workers), Millis: ms, Rows: rows,
			})
		}
	}
	return out, nil
}

// A KPrimeRow is one point of the k′ trade-off ablation (paper
// Section 2.1): higher k′ halves tree depth (faster) but costs memory on
// sparse key distributions.
type KPrimeRow struct {
	KPrime      uint
	Dist        string // "dense" or "sparse"
	InsertNs    float64
	LookupNs    float64
	Bytes       int
	BytesPerKey float64
}

// AblationKPrime measures insert/lookup time and memory across prefix
// lengths for dense and sparse 32-bit key sets.
func AblationKPrime(n int) []KPrimeRow {
	var out []KPrimeRow
	for _, dist := range []string{"dense", "sparse"} {
		keys := make([]uint64, n)
		rng := rand.New(rand.NewSource(41))
		if dist == "dense" {
			for i := range keys {
				keys[i] = uint64(i)
			}
			rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		} else {
			for i := range keys {
				keys[i] = uint64(rng.Uint32())
			}
		}
		for _, kp := range []uint{2, 4, 8} {
			t := prefixtree.MustNew(prefixtree.Config{PrefixLen: kp, KeyBits: 32})
			insertNs := timePerKey(n, func() {
				for _, k := range keys {
					t.Insert(k, nil)
				}
			})
			lookupNs := timePerKey(n, func() {
				for _, k := range keys {
					if lf := t.Lookup(k); lf != nil {
						sink += lf.Key
					}
				}
			})
			out = append(out, KPrimeRow{
				KPrime: kp, Dist: dist,
				InsertNs: insertNs, LookupNs: lookupNs,
				Bytes: t.Bytes(), BytesPerKey: float64(t.Bytes()) / float64(t.Keys()),
			})
		}
	}
	return out
}

// A CompressionRow is one point of the KISS bitmask-compression ablation
// (paper Section 2.2): compression saves memory on sparse domains but
// pays an RCU copy for every new key on dense domains — the reason QPPT
// disables it for dense value ranges.
type CompressionRow struct {
	Dist      string
	Compress  bool
	InsertNs  float64
	Bytes     int
	RCUCopies int
}

// AblationKISSCompression measures dense and sparse insert costs with and
// without second-level node compression.
func AblationKISSCompression(n int) []CompressionRow {
	var out []CompressionRow
	for _, dist := range []string{"dense", "sparse"} {
		keys := make([]uint64, n)
		rng := rand.New(rand.NewSource(43))
		if dist == "dense" {
			for i := range keys {
				keys[i] = uint64(i)
			}
			rng.Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		} else {
			// One key per second-level node region: worst case for the
			// uncompressed layout's memory, best case for compression.
			for i := range keys {
				keys[i] = uint64(rng.Uint32()) &^ 63
			}
		}
		for _, compress := range []bool{false, true} {
			t := kisstree.MustNew(kisstree.Config{Compress: compress})
			ns := timePerKey(n, func() {
				for _, k := range keys {
					t.Insert(k, nil)
				}
			})
			out = append(out, CompressionRow{
				Dist: dist, Compress: compress,
				InsertNs: ns, Bytes: t.Bytes(), RCUCopies: t.RCUCopies(),
			})
		}
	}
	return out
}

// A MemLifeRow is one configuration of the plan memory-lifecycle
// ablation: the full 13-query SSB suite run under one allocate → spill →
// thaw → recycle configuration, with the memory-system costs the
// lifecycle work targets — heap allocation, GC pauses, and the
// spill-file bytes restores actually had to copy.
type MemLifeRow struct {
	Config        string  `json:"config"`
	Millis        float64 `json:"millis"`            // whole-suite wall time, best of reps
	AllocBytes    uint64  `json:"allocBytes"`        // heap allocated during one suite pass
	Allocs        uint64  `json:"allocs"`            // heap objects allocated during the pass
	GCPauseNs     uint64  `json:"gcPauseNs"`         // GC stop-the-world pause during the pass
	NumGC         uint32  `json:"numGC"`             // GC cycles during the pass
	ThawBytesRead int64   `json:"thawBytesRead"`     // spill-file bytes copied by restores
	ChunksReused  int     `json:"chunksReused"`      // allocations served by the recycler
	SavedBytes    int64   `json:"recycleSavedBytes"` // heap allocation the reuses avoided
}

// memLifeSuite runs the thirteen SSB queries once under exec and sums the
// spill/recycler counters from the plan statistics.
func memLifeSuite(ds *ssb.Dataset, exec core.Options) (thawRead int64, reused int, saved int64, err error) {
	exec.CollectStats = true
	for _, qid := range ssb.QueryIDs {
		opt := ssb.DefaultPlanOptions()
		opt.Exec = exec
		_, stats, e := ds.RunQPPT(qid, opt)
		if e != nil {
			return 0, 0, 0, fmt.Errorf("bench: Q%s (%+v): %w", qid, exec, e)
		}
		thawRead += stats.RestoreBytesRead
		reused += stats.ChunksReused
		saved += stats.RecycleSavedBytes
	}
	return thawRead, reused, saved, nil
}

// AblationMemLifecycle compares the plan memory-lifecycle configurations
// on the whole SSB suite: the GC baseline, the plan-scoped chunk
// recycler, and spilling with the copying, mmap (zero-copy), and
// mmap+recycler restore paths. The spill rows run under a 1-byte budget —
// every cold intermediate spills and every re-read restores — because
// that is the configuration that isolates the restore-path difference:
// under a realistic budget the restore traffic depends on the scale
// factor, and a budget above the peak shows nothing at all. The
// interesting columns are allocations and GC pause (recycler) and thaw
// bytes read (the mmap restore adopts the tree interior instead of
// copying it).
func AblationMemLifecycle(ds *ssb.Dataset, reps int) ([]MemLifeRow, error) {
	type cfg struct {
		name string
		exec core.Options
	}
	cfgs := []cfg{
		{"baseline", core.Options{}},
		{"recycle", core.Options{Recycle: true}},
		{"spill-all", core.Options{MemBudget: 1}},
		{"spill-all+mmap", core.Options{MemBudget: 1, MmapThaw: true}},
		{"spill-all+mmap+recycle", core.Options{MemBudget: 1, MmapThaw: true, Recycle: true}},
	}
	for i := range cfgs {
		// The lifecycle under measurement is allocate → spill → thaw →
		// recycle of the intermediate indexes; fusion would skip building
		// the very intermediates the configurations differ on (the fused
		// path has its own ablation, AblationFusion).
		cfgs[i].exec.NoFuse = true
	}
	var out []MemLifeRow
	for _, c := range cfgs {
		var err error
		ms, _ := timeIt(reps, func() int {
			n := 0
			for _, qid := range ssb.QueryIDs {
				opt := ssb.DefaultPlanOptions()
				opt.Exec = c.exec
				r, _, e := ds.RunQPPT(qid, opt)
				if e != nil {
					err = e
					return 0
				}
				n += len(r.Rows)
			}
			return n
		})
		if err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		thawRead, reused, saved, err := memLifeSuite(ds, c.exec)
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&after)
		out = append(out, MemLifeRow{
			Config:        c.name,
			Millis:        ms,
			AllocBytes:    after.TotalAlloc - before.TotalAlloc,
			Allocs:        after.Mallocs - before.Mallocs,
			GCPauseNs:     after.PauseTotalNs - before.PauseTotalNs,
			NumGC:         after.NumGC - before.NumGC,
			ThawBytesRead: thawRead,
			ChunksReused:  reused,
			SavedBytes:    saved,
		})
	}
	return out, nil
}

// A FusionRow is one SSB query of the pipeline-fusion ablation: the query
// run with fusion on and off, with the fused-path counters and a
// bit-identity check against the materialized result.
type FusionRow struct {
	Query          string  `json:"query"`
	FusedMillis    float64 `json:"fusedMillis"`    // fusion on, best of reps
	UnfusedMillis  float64 `json:"unfusedMillis"`  // fusion off (every edge materialized)
	FusedEdges     int     `json:"fusedEdges"`     // intermediate indexes skipped
	TuplesStreamed int     `json:"tuplesStreamed"` // combinations forwarded instead of indexed
	Identical      bool    `json:"identical"`      // fused rows == materialized rows
}

// AblationFusion compares fused and materialized execution of the whole
// SSB suite on the decomposed (plain, no select-join) plans — the shape
// where every query carries at least one single-consumer selection→join
// edge, so fusion applies to all thirteen queries. Each row records both
// timings, how many intermediate indexes fusion skipped, how many
// combinations streamed through the fused pipelines instead of being
// indexed, and whether the fused result was bit-identical to the
// materialized one.
func AblationFusion(ds *ssb.Dataset, reps int) ([]FusionRow, error) {
	var out []FusionRow
	for _, qid := range ssb.QueryIDs {
		// Zero-value PlanOptions is the decomposed plan shape
		// (UseSelectJoin false); only Exec.NoFuse varies between the rows.
		run := func(exec core.Options) (rows [][]uint64, stats *core.PlanStats, err error) {
			r, st, e := ds.RunQPPT(qid, ssb.PlanOptions{Exec: exec})
			if e != nil {
				return nil, nil, fmt.Errorf("bench: Q%s (%+v): %w", qid, exec, e)
			}
			return r.Rows, st, nil
		}
		// The decomposed plan shape provisions its own base indexes
		// lazily; warm them outside the timed region so the first
		// configuration measured does not pay the builds.
		if _, _, err := run(core.Options{}); err != nil {
			return nil, err
		}
		var err error
		fusedMs, _ := timeIt(reps, func() int {
			r, _, e := run(core.Options{})
			if e != nil {
				err = e
				return 0
			}
			return len(r)
		})
		if err != nil {
			return nil, err
		}
		unfusedMs, _ := timeIt(reps, func() int {
			r, _, e := run(core.Options{NoFuse: true})
			if e != nil {
				err = e
				return 0
			}
			return len(r)
		})
		if err != nil {
			return nil, err
		}
		// One stats pass supplies the fused counters and the identity check.
		fused, stats, err := run(core.Options{CollectStats: true})
		if err != nil {
			return nil, err
		}
		materialized, _, err := run(core.Options{NoFuse: true})
		if err != nil {
			return nil, err
		}
		streamed := 0
		for _, op := range stats.Ops {
			streamed += op.TuplesStreamed
		}
		out = append(out, FusionRow{
			Query: qid, FusedMillis: fusedMs, UnfusedMillis: unfusedMs,
			FusedEdges: stats.FusedEdges, TuplesStreamed: streamed,
			Identical: reflect.DeepEqual(fused, materialized),
		})
	}
	return out, nil
}

// A ProbeRow is one SSB query of the batched-probe ablation: the fused
// decomposed plan run with batched (default) and scalar (ProbeBatch 1)
// probe forwarding, against the fully materialized execution, with the
// batch counters and a bit-identity check.
type ProbeRow struct {
	Query              string  `json:"query"`
	BatchedMillis      float64 `json:"batchedMillis"`      // fused, batched forwarding (default)
	ScalarMillis       float64 `json:"scalarMillis"`       // fused, ProbeBatch 1
	MaterializedMillis float64 `json:"materializedMillis"` // NoFuse
	ProbeBatches       int     `json:"probeBatches"`       // batches flushed through the fused chains
	AvgBatchFill       float64 `json:"avgBatchFill"`       // combinations per batch
	Identical          bool    `json:"identical"`          // batched rows == materialized rows
}

// AblationProbe isolates the batch-probe amortization inside fused
// chains on the decomposed SSB plans: batched forwarding sorts each probe
// buffer so upper links' LookupBatch walks shared tree descents once per
// distinct key, where scalar forwarding (ProbeBatch 1) descends per
// combination — the paper's vector-at-a-time claim applied inside a
// pipeline. The materialized column anchors both against no fusion at
// all. The join-heavy flights 2–4 are where batching should win; flight 1
// chains are selection-only and mostly shrug.
func AblationProbe(ds *ssb.Dataset, reps int) ([]ProbeRow, error) {
	var out []ProbeRow
	for _, qid := range ssb.QueryIDs {
		run := func(exec core.Options) (rows [][]uint64, stats *core.PlanStats, err error) {
			r, st, e := ds.RunQPPT(qid, ssb.PlanOptions{Exec: exec})
			if e != nil {
				return nil, nil, fmt.Errorf("bench: Q%s (%+v): %w", qid, exec, e)
			}
			return r.Rows, st, nil
		}
		// Warm the lazily provisioned base indexes outside the timed region.
		if _, _, err := run(core.Options{}); err != nil {
			return nil, err
		}
		var err error
		time := func(exec core.Options) float64 {
			ms, _ := timeIt(reps, func() int {
				r, _, e := run(exec)
				if e != nil {
					err = e
					return 0
				}
				return len(r)
			})
			return ms
		}
		batchedMs := time(core.Options{})
		scalarMs := time(core.Options{ProbeBatch: 1})
		materializedMs := time(core.Options{NoFuse: true})
		if err != nil {
			return nil, err
		}
		// One stats pass supplies the batch counters and the identity check.
		batched, stats, err := run(core.Options{CollectStats: true})
		if err != nil {
			return nil, err
		}
		materialized, _, err := run(core.Options{NoFuse: true})
		if err != nil {
			return nil, err
		}
		batches, streamed := 0, 0
		for _, op := range stats.Ops {
			batches += op.ProbeBatches
			streamed += op.TuplesStreamed
		}
		fill := 0.0
		if batches > 0 {
			fill = float64(streamed) / float64(batches)
		}
		out = append(out, ProbeRow{
			Query: qid, BatchedMillis: batchedMs, ScalarMillis: scalarMs,
			MaterializedMillis: materializedMs,
			ProbeBatches:       batches, AvgBatchFill: fill,
			Identical: reflect.DeepEqual(batched, materialized),
		})
	}
	return out, nil
}

// A KernelRow is one SSB query of the SWAR-kernel ablation: the fused
// batched plan with the word-parallel kernels active (default) vs forced
// through the scalar fallback (kernel.ForceGeneric — the -nokernel path)
// vs fully materialized, with the descent-strategy counters and a
// three-way bit-identity check.
type KernelRow struct {
	Query              string  `json:"query"`
	KernelMillis       float64 `json:"kernelMillis"`       // fused+batched, SWAR kernels
	ScalarMillis       float64 `json:"scalarMillis"`       // fused+batched, generic fallback
	MaterializedMillis float64 `json:"materializedMillis"` // NoFuse
	KernelDescents     int     `json:"kernelDescents"`     // batched lookups via the SWAR descent
	ScalarDescents     int     `json:"scalarDescents"`     // batched lookups via the scalar job loop
	Identical          bool    `json:"identical"`          // kernel rows == scalar rows == materialized rows
}

// AblationKernel isolates the SWAR batch kernels on the decomposed SSB
// plans: same fused batched execution, with the level-synchronous kernel
// descent and selection-vector predicate filters either active or forced
// through the scalar fallback oracle, anchored against no fusion at all.
// Identity across all three legs is the safety claim (the kernels are
// bit-transparent); kernel <= scalar on the probe-heavy flights 2-4 is
// the performance claim.
func AblationKernel(ds *ssb.Dataset, reps int) ([]KernelRow, error) {
	var out []KernelRow
	for _, qid := range ssb.QueryIDs {
		run := func(exec core.Options) (rows [][]uint64, stats *core.PlanStats, err error) {
			r, st, e := ds.RunQPPT(qid, ssb.PlanOptions{Exec: exec})
			if e != nil {
				return nil, nil, fmt.Errorf("bench: Q%s (%+v): %w", qid, exec, e)
			}
			return r.Rows, st, nil
		}
		// Warm the lazily provisioned base indexes outside the timed region.
		if _, _, err := run(core.Options{}); err != nil {
			return nil, err
		}
		var err error
		time := func(exec core.Options) float64 {
			ms, _ := timeIt(reps, func() int {
				r, _, e := run(exec)
				if e != nil {
					err = e
					return 0
				}
				return len(r)
			})
			return ms
		}
		kernelMs := time(core.Options{})
		restore := kernel.ForceGeneric()
		scalarMs := time(core.Options{})
		scalarRows, _, serr := run(core.Options{})
		restore()
		if err == nil {
			err = serr
		}
		materializedMs := time(core.Options{NoFuse: true})
		if err != nil {
			return nil, err
		}
		// One stats pass supplies the descent counters and the identity check.
		kernelRows, stats, err := run(core.Options{CollectStats: true})
		if err != nil {
			return nil, err
		}
		materialized, _, err := run(core.Options{NoFuse: true})
		if err != nil {
			return nil, err
		}
		kd, sd := 0, 0
		for _, op := range stats.Ops {
			kd += op.KernelDescents
			sd += op.ScalarDescents
		}
		out = append(out, KernelRow{
			Query: qid, KernelMillis: kernelMs, ScalarMillis: scalarMs,
			MaterializedMillis: materializedMs,
			KernelDescents:     kd, ScalarDescents: sd,
			Identical: reflect.DeepEqual(kernelRows, scalarRows) &&
				reflect.DeepEqual(kernelRows, materialized),
		})
	}
	return out, nil
}

// A DuplicateRow is one point of the duplicate-layout ablation (paper
// Section 2.4, Figure 4): sequential doubling segments vs a naive per-row
// linked list.
type DuplicateRow struct {
	Layout string
	Dups   int
	ScanNs float64 // per row
	Bytes  int
}

// AblationDuplicates builds one key with n duplicate rows in both layouts
// and measures the scan cost per row and the memory footprint. The
// segmented layout scans sequential memory; the linked list chases one
// pointer per row.
func AblationDuplicates(n int, width int, scans int) []DuplicateRow {
	row := make([]uint64, width)
	seg := duplist.New(width)
	lnk := duplist.NewLinked(width)
	for i := 0; i < n; i++ {
		row[0] = uint64(i)
		seg.Append(row)
		lnk.Append(row)
	}
	segNs := timePerKey(n*scans, func() {
		for s := 0; s < scans; s++ {
			seg.Scan(func(r []uint64) bool { sink += r[0]; return true })
		}
	})
	lnkNs := timePerKey(n*scans, func() {
		for s := 0; s < scans; s++ {
			lnk.Scan(func(r []uint64) bool { sink += r[0]; return true })
		}
	})
	return []DuplicateRow{
		{Layout: "segmented (Fig. 4)", Dups: n, ScanNs: segNs, Bytes: seg.Bytes()},
		{Layout: "linked list", Dups: n, ScanNs: lnkNs, Bytes: lnk.Bytes()},
	}
}

// A BatchRow is one point of the batch-size sweep (paper Section 2.3).
type BatchRow struct {
	BatchSize int
	LookupNs  float64
}

// AblationBatchSize sweeps the KISS-Tree batch lookup size on a large
// tree; batch size 1 degenerates to scalar lookups.
func AblationBatchSize(n int) []BatchRow {
	keys := fig3Keys(n, 47)
	t := kisstree.MustNew(kisstree.Config{})
	for _, k := range keys {
		t.Insert(k, nil)
	}
	probes := fig3Keys(n, 49)
	var out []BatchRow
	for _, bs := range []int{1, 16, 64, 256, 512, 1024, 4096} {
		ns := timePerKey(n, func() {
			if bs == 1 {
				for _, k := range probes {
					if lf := t.Lookup(k); lf != nil {
						sink += lf.Key
					}
				}
				return
			}
			for off := 0; off < len(probes); off += bs {
				end := min(off+bs, len(probes))
				t.LookupBatch(probes[off:end], func(i int, lf *kisstree.Leaf) {
					if lf != nil {
						sink += lf.Key
					}
				})
			}
		})
		out = append(out, BatchRow{BatchSize: bs, LookupNs: ns})
	}
	return out
}

// WarmupQueries runs each query once per engine so that Figure 7 timings
// exclude one-time costs (lazy index builds).
func WarmupQueries(ds *ssb.Dataset) error {
	for _, qid := range ssb.QueryIDs {
		if _, _, err := ds.RunQPPT(qid, ssb.DefaultPlanOptions()); err != nil {
			return err
		}
		if _, err := ds.RunColumn(qid); err != nil {
			return err
		}
		if _, err := ds.RunVector(qid); err != nil {
			return err
		}
	}
	return nil
}
