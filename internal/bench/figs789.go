package bench

import (
	"context"
	"fmt"
	"time"

	"qppt/internal/arena"
	"qppt/internal/core"
	"qppt/internal/ssb"
)

// Engines in the paper's plot order.
const (
	EngineQPPT   = "DexterDB (QPPT)"
	EngineVector = "Commercial DBMS (vector-at-a-time)"
	EngineColumn = "MonetDB (column-at-a-time)"
)

// A QueryTime is one bar of Figures 7–9.
type QueryTime struct {
	Query  string
	Engine string
	Config string // plan configuration, where varied
	Millis float64
	Rows   int
}

// timeIt runs fn reps times and returns the best wall time in ms — the
// usual way to strip scheduler noise from single-run query timings.
func timeIt(reps int, fn func() int) (float64, int) {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(1<<62 - 1)
	rows := 0
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		rows = fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return float64(best.Microseconds()) / 1000, rows
}

// Figure7 reruns the paper's headline experiment: all thirteen SSB
// queries on the three engines, single-threaded, with QPPT in its default
// configuration (composed select-joins, unlimited join arity).
func Figure7(ds *ssb.Dataset, reps int) ([]QueryTime, error) {
	return Figure7Exec(ds, reps, core.Options{})
}

// Figure7Exec is Figure7 with explicit execution options for the QPPT
// engine, so the figure can also be regenerated with the morsel-driven
// worker pool enabled (the baselines stay single-threaded either way);
// the QPPT rows record the pool size in their Config.
func Figure7Exec(ds *ssb.Dataset, reps int, exec core.Options) ([]QueryTime, error) {
	var out []QueryTime
	qpptConfig := ""
	if w := exec.Workers; w > 1 {
		qpptConfig = fmt.Sprintf("workers=%d", w)
	}
	for _, qid := range ssb.QueryIDs {
		qppt := ssb.DefaultPlanOptions()
		qppt.Exec = exec
		var err error
		ms, rows := timeIt(reps, func() int {
			res, _, e := ds.RunQPPT(qid, qppt)
			if e != nil {
				err = e
				return 0
			}
			return len(res.Rows)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: Q%s qppt: %w", qid, err)
		}
		out = append(out, QueryTime{Query: qid, Engine: EngineQPPT, Config: qpptConfig, Millis: ms, Rows: rows})

		ms, rows = timeIt(reps, func() int {
			res, e := ds.RunVector(qid)
			if e != nil {
				err = e
				return 0
			}
			return len(res.Rows)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: Q%s vector: %w", qid, err)
		}
		out = append(out, QueryTime{Query: qid, Engine: EngineVector, Millis: ms, Rows: rows})

		ms, rows = timeIt(reps, func() int {
			res, e := ds.RunColumn(qid)
			if e != nil {
				err = e
				return 0
			}
			return len(res.Rows)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: Q%s column: %w", qid, err)
		}
		out = append(out, QueryTime{Query: qid, Engine: EngineColumn, Millis: ms, Rows: rows})
	}
	return out, nil
}

// QPPTTimes times the thirteen SSB queries on the QPPT engine alone (no
// baselines) under the given execution options, labeling every row with
// config. The perf snapshot uses it to record extra engine configurations
// — e.g. a spill-enabled run under a memory budget — without re-timing
// the baseline engines.
func QPPTTimes(ds *ssb.Dataset, reps int, exec core.Options, config string) ([]QueryTime, error) {
	var out []QueryTime
	for _, qid := range ssb.QueryIDs {
		qppt := ssb.DefaultPlanOptions()
		qppt.Exec = exec
		var err error
		ms, rows := timeIt(reps, func() int {
			res, _, e := ds.RunQPPT(qid, qppt)
			if e != nil {
				err = e
				return 0
			}
			return len(res.Rows)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: Q%s qppt (%s): %w", qid, config, err)
		}
		out = append(out, QueryTime{Query: qid, Engine: EngineQPPT, Config: config, Millis: ms, Rows: rows})
	}
	return out, nil
}

// QPPTTimesEnv is QPPTTimes against a long-lived execution environment:
// every query runs through env, so the worker pool, session chunk pool
// and spill budget carry across the suite exactly as they do under a
// qppt.Engine. The engine-vs-one-shot comparison of the perf snapshot
// uses it for the reused side.
func QPPTTimesEnv(ds *ssb.Dataset, reps int, exec core.Options, env *core.Env, config string) ([]QueryTime, error) {
	var out []QueryTime
	for _, qid := range ssb.QueryIDs {
		qppt := ssb.DefaultPlanOptions()
		qppt.Exec = exec
		var err error
		ms, rows := timeIt(reps, func() int {
			res, _, e := ds.RunQPPTCtx(context.Background(), qid, qppt, env)
			if e != nil {
				err = e
				return 0
			}
			return len(res.Rows)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: Q%s qppt (%s): %w", qid, config, err)
		}
		out = append(out, QueryTime{Query: qid, Engine: EngineQPPT, Config: config, Millis: ms, Rows: rows})
	}
	return out, nil
}

// EngineReuseCompare runs the thirteen-query suite twice — one-shot
// (every plan builds and drops its own pool, recycler and spill state)
// and through one shared environment with cross-plan chunk recycling —
// and returns both sets of rows plus the reuse the shared environment
// accumulated. It is the benchmark form of the engine's reason to exist:
// identical queries, identical results, steady-state allocation behavior.
// exec applies to both sides — a MemBudget spills per-plan on the
// one-shot side and engine-wide on the reused side, and the row labels
// record it; recycleCap bounds the shared pool (0 = unbounded).
func EngineReuseCompare(ds *ssb.Dataset, reps int, exec core.Options, recycleCap int64) ([]QueryTime, arena.RecyclerStats, error) {
	suffix := ""
	if exec.MemBudget > 0 {
		suffix = ",membudget"
	}
	oneShot := exec
	oneShot.Recycle = true // per-plan pool: the strongest one-shot config
	rows, err := QPPTTimes(ds, reps, oneShot, "one-shot"+suffix)
	if err != nil {
		return nil, arena.RecyclerStats{}, err
	}
	env, err := core.NewEnv(core.EnvConfig{
		Workers:    exec.Workers,
		Recycle:    true,
		RecycleCap: recycleCap,
		MemBudget:  exec.MemBudget,
		MmapThaw:   exec.MmapThaw,
	})
	if err != nil {
		return nil, arena.RecyclerStats{}, err
	}
	defer env.Close()
	reused, err := QPPTTimesEnv(ds, reps, exec, env, "engine-reuse"+suffix)
	if err != nil {
		return nil, arena.RecyclerStats{}, err
	}
	return append(rows, reused...), env.RecyclerStats(), nil
}

// Figure8 reruns the select-join ablation on query 1.1: both baselines
// plus QPPT with the composed select-join-group operator and with a
// separate selection + join-group plan. The paper reports 151 ms vs
// 1709 ms (~11×) with ~95 % of the separate plan inside the selection.
func Figure8(ds *ssb.Dataset, reps int) ([]QueryTime, error) {
	return Figure8Exec(ds, reps, core.Options{})
}

// Figure8Exec is Figure8 with explicit execution options for the QPPT
// engine rows (the baselines stay single-threaded).
func Figure8Exec(ds *ssb.Dataset, reps int, exec core.Options) ([]QueryTime, error) {
	var out []QueryTime
	add := func(engine, config string, fn func() (int, error)) error {
		var err error
		ms, rows := timeIt(reps, func() int {
			n, e := fn()
			if e != nil {
				err = e
			}
			return n
		})
		if err != nil {
			return err
		}
		out = append(out, QueryTime{Query: "1.1", Engine: engine, Config: config, Millis: ms, Rows: rows})
		return nil
	}
	if err := add(EngineColumn, "", func() (int, error) {
		r, e := ds.RunColumn("1.1")
		return len(r.Rows), e
	}); err != nil {
		return nil, err
	}
	if err := add(EngineVector, "", func() (int, error) {
		r, e := ds.RunVector("1.1")
		return len(r.Rows), e
	}); err != nil {
		return nil, err
	}
	if err := add(EngineQPPT, "w/ Select-Join", func() (int, error) {
		r, _, e := ds.RunQPPT("1.1", ssb.PlanOptions{UseSelectJoin: true, Exec: exec})
		return len(r.Rows), e
	}); err != nil {
		return nil, err
	}
	if err := add(EngineQPPT, "w/o Select-Join", func() (int, error) {
		r, _, e := ds.RunQPPT("1.1", ssb.PlanOptions{UseSelectJoin: false, Exec: exec})
		return len(r.Rows), e
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure8SelectionShare reports the share of the separate plan's time
// spent in the lineorder selection operator (the paper: ~95 %).
func Figure8SelectionShare(ds *ssb.Dataset) (float64, error) {
	_, stats, err := ds.RunQPPT("1.1", ssb.PlanOptions{
		UseSelectJoin: false,
		Exec:          core.Options{CollectStats: true},
	})
	if err != nil {
		return 0, err
	}
	var sel, total time.Duration
	for _, op := range stats.Ops {
		total += op.Time
		if op.Label == "σ→σ_lineorder" {
			sel = op.Time
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(sel) / float64(total), nil
}

// Figure9 reruns the multi-way join arity ablation on query 4.1: both
// baselines plus QPPT plans capped at 2-, 3-, 4- and 5-way composed
// joins. The paper reports monotone improvement with the 2→3-way step
// the largest (4939 → 1595 → 1091 → 842 ms).
func Figure9(ds *ssb.Dataset, reps int) ([]QueryTime, error) {
	return Figure9Exec(ds, reps, core.Options{})
}

// Figure9Exec is Figure9 with explicit execution options for the QPPT
// engine rows (the baselines stay single-threaded).
func Figure9Exec(ds *ssb.Dataset, reps int, exec core.Options) ([]QueryTime, error) {
	var out []QueryTime
	var err error
	ms, rows := timeIt(reps, func() int {
		r, e := ds.RunColumn("4.1")
		if e != nil {
			err = e
			return 0
		}
		return len(r.Rows)
	})
	if err != nil {
		return nil, err
	}
	out = append(out, QueryTime{Query: "4.1", Engine: EngineColumn, Millis: ms, Rows: rows})
	ms, rows = timeIt(reps, func() int {
		r, e := ds.RunVector("4.1")
		if e != nil {
			err = e
			return 0
		}
		return len(r.Rows)
	})
	if err != nil {
		return nil, err
	}
	out = append(out, QueryTime{Query: "4.1", Engine: EngineVector, Millis: ms, Rows: rows})
	for arity := 5; arity >= 2; arity-- {
		arity := arity
		ms, rows = timeIt(reps, func() int {
			r, _, e := ds.RunQPPT("4.1", ssb.PlanOptions{JoinArity: arity, Exec: exec})
			if e != nil {
				err = e
				return 0
			}
			return len(r.Rows)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, QueryTime{
			Query: "4.1", Engine: EngineQPPT,
			Config: fmt.Sprintf("%d-way join", arity), Millis: ms, Rows: rows,
		})
	}
	return out, nil
}
