package qppt

import (
	"context"

	"qppt/internal/core"
	"qppt/internal/sql"
)

// A Session is the per-client handle on an Engine: it plans SQL against
// one catalog and runs the plans on the engine's shared resources. A
// Session carries no mutable state of its own and is safe for concurrent
// use.
type Session struct {
	eng     *Engine
	planner *sql.Planner
}

// Conn is a Session: the name database drivers use for the same handle.
type Conn = Session

// Engine returns the engine the session runs on.
func (s *Session) Engine() *Engine { return s.eng }

// Query parses, plans and executes one SQL statement. The returned rows
// are materialized and fully owned by the caller; cancelling ctx unwinds
// the execution promptly and returns ctx.Err().
func (s *Session) Query(ctx context.Context, text string, opts ...QueryOption) (*sql.Rows, *core.PlanStats, error) {
	stmt, err := s.Prepare(ctx, text, opts...)
	if err != nil {
		return nil, nil, err
	}
	return stmt.Run(ctx)
}

// Prepare parses and plans a statement for repeated execution. Planning
// pins the physical plan — including the base indexes it provisions in
// the catalog, which on a cold catalog means full table scans; ctx
// cancels those builds too — so Stmt.Run pays only execution. Per-query
// options given here become the statement's defaults; Run can override
// them again.
func (s *Session) Prepare(ctx context.Context, text string, opts ...QueryOption) (*Stmt, error) {
	if err := s.eng.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q := queryConfig{exec: s.eng.execOptions(nil)}
	for _, o := range opts {
		o(&q)
	}
	stmt, err := s.planner.PlanSQLCtx(ctx, text, sql.Options{
		UseSelectJoin: !q.noSelectJoin,
		Exec:          q.exec,
	})
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: s, stmt: stmt, base: q}, nil
}

// A Stmt is a prepared statement bound to its session's engine.
type Stmt struct {
	sess *Session
	stmt *sql.Statement
	base queryConfig
}

// Attrs returns the output attribute names in SELECT-item order.
func (st *Stmt) Attrs() []string { return st.stmt.Attrs }

// Run executes the prepared statement. Options passed here override the
// statement's defaults for this run only.
func (st *Stmt) Run(ctx context.Context, opts ...QueryOption) (*sql.Rows, *core.PlanStats, error) {
	eng := st.sess.eng
	if err := eng.begin(); err != nil {
		return nil, nil, err
	}
	defer eng.end()
	q := st.base
	for _, o := range opts {
		o(&q)
	}
	eng.queries.Add(1)
	return st.stmt.RunExec(ctx, eng.env, q.exec)
}

// queryConfig accumulates the per-query knobs QueryOptions set.
type queryConfig struct {
	exec         core.Options
	noSelectJoin bool
}

// A QueryOption overrides one execution knob for a single query (or, on
// Prepare, for every run of the statement). Engine-level resources — the
// worker pool, the chunk pool, the spill budget — are not per-query knobs
// and have no options here.
type QueryOption func(*queryConfig)

// WithStats collects per-operator execution statistics for the query.
func WithStats() QueryOption {
	return func(q *queryConfig) { q.exec.CollectStats = true }
}

// WithBufferSize overrides the joinbuffer/selectionbuffer size (1
// disables batching).
func WithBufferSize(n int) QueryOption {
	return func(q *queryConfig) { q.exec.BufferSize = n }
}

// WithMorselsPerWorker overrides the morsel fan-out factor of parallel
// operators.
func WithMorselsPerWorker(n int) QueryOption {
	return func(q *queryConfig) { q.exec.MorselsPerWorker = n }
}

// WithoutSelectJoin plans selections as separate operators instead of
// fusing the most selective one into the successive join — the paper's
// Figure 8 ablation, exposed for plan inspection. Only meaningful on
// Prepare/Query (it is a planning decision, not an execution one).
func WithoutSelectJoin() QueryOption {
	return func(q *queryConfig) { q.noSelectJoin = true }
}

// WithoutFusion disables pipeline fusion for the query: every
// single-consumer intermediate index is materialized, as in the paper's
// decomposed-plan model. The result is identical either way; the
// materialized plan reports per-operator index sizes where the fused one
// reports streamed combination counts (OperatorStats.Fused).
func WithoutFusion() QueryOption {
	return func(q *queryConfig) { q.exec.NoFuse = true }
}

// WithProbeBatch overrides the probe-forward batch size inside fused
// chains (1 = scalar combination-at-a-time forwarding, 0 = default). The
// result is identical at any setting; larger batches amortize shared tree
// descents across the batch's sorted keys.
func WithProbeBatch(n int) QueryOption {
	return func(q *queryConfig) { q.exec.ProbeBatch = n }
}
