package qppt

import (
	"context"

	"qppt/internal/core"
	"qppt/internal/sql"
)

// A Session is the per-client handle on an Engine: it plans SQL against
// one catalog and runs the plans on the engine's shared resources. It is
// safe for concurrent use. Each session is one admission-fairness domain
// (see Config.MaxPlans); sessions opened with Engine.Conn additionally
// carry a prepared-statement cache.
type Session struct {
	eng     *Engine
	planner *sql.Planner
	id      uint64
	cache   *stmtCache // nil unless opened with Engine.Conn
}

// Conn is a Session: the name database drivers use for the same handle.
type Conn = Session

// Engine returns the engine the session runs on.
func (s *Session) Engine() *Engine { return s.eng }

// ID is the session's admission-fairness identity: the gate round-robins
// freed slots across distinct IDs.
func (s *Session) ID() uint64 { return s.id }

// Close releases the session's prepared-statement cache (no-op for
// sessions without one). The session itself holds no other resources —
// statements already returned stay runnable.
func (s *Session) Close() error {
	if s.cache != nil {
		s.cache.drop()
	}
	return nil
}

// PrepareCached is Prepare through the session's statement cache:
// planning happens once per distinct SQL text and repeats are served
// from the LRU (an Engine.Stats statement-cache hit — the Bind fast path
// of the wire protocol). Sessions without a cache (Engine.Session) plan
// every call. The cache does not fingerprint opts; callers must pass the
// same options for the same text, as a protocol connection does.
func (s *Session) PrepareCached(ctx context.Context, text string, opts ...QueryOption) (*Stmt, error) {
	if s.cache == nil {
		return s.Prepare(ctx, text, opts...)
	}
	if st, ok := s.cache.lookup(text); ok {
		return st, nil
	}
	st, err := s.Prepare(ctx, text, opts...)
	if err != nil {
		return nil, err
	}
	s.cache.add(text, st)
	return st, nil
}

// Query parses, plans and executes one SQL statement. The returned rows
// are materialized and fully owned by the caller; cancelling ctx unwinds
// the execution promptly and returns ctx.Err().
func (s *Session) Query(ctx context.Context, text string, opts ...QueryOption) (*sql.Rows, *core.PlanStats, error) {
	stmt, err := s.Prepare(ctx, text, opts...)
	if err != nil {
		return nil, nil, err
	}
	return stmt.Run(ctx)
}

// Prepare parses and plans a statement for repeated execution. Planning
// pins the physical plan — including the base indexes it provisions in
// the catalog, which on a cold catalog means full table scans; ctx
// cancels those builds too — so Stmt.Run pays only execution. Per-query
// options given here become the statement's defaults; Run can override
// them again.
func (s *Session) Prepare(ctx context.Context, text string, opts ...QueryOption) (*Stmt, error) {
	if err := s.eng.checkOpen(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q := queryConfig{exec: s.eng.execOptions(nil)}
	for _, o := range opts {
		o(&q)
	}
	stmt, err := s.planner.PlanSQLCtx(ctx, text, sql.Options{
		UseSelectJoin: !q.noSelectJoin,
		Exec:          q.exec,
	})
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: s, stmt: stmt, base: q}, nil
}

// A Stmt is a prepared statement bound to its session's engine.
type Stmt struct {
	sess *Session
	stmt *sql.Statement
	base queryConfig
}

// Attrs returns the output attribute names in SELECT-item order.
func (st *Stmt) Attrs() []string { return st.stmt.Attrs }

// Run executes the prepared statement. Options passed here override the
// statement's defaults for this run only. Under Config.MaxPlans the run
// first passes the engine's admission gate in its session's fair queue;
// a full queue fails fast with ErrOverloaded, and the queue wait is
// reported as PlanStats.AdmissionWait.
func (st *Stmt) Run(ctx context.Context, opts ...QueryOption) (*sql.Rows, *core.PlanStats, error) {
	eng := st.sess.eng
	if err := eng.begin(); err != nil {
		return nil, nil, err
	}
	defer eng.end()
	release, wait, err := eng.admit(ctx, st.sess.id)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	q := st.base
	for _, o := range opts {
		o(&q)
	}
	eng.queries.Add(1)
	exec := q.exec
	exec.AdmissionWait = wait
	return st.stmt.RunExec(ctx, eng.env, exec)
}

// queryConfig accumulates the per-query knobs QueryOptions set.
type queryConfig struct {
	exec         core.Options
	noSelectJoin bool
}

// A QueryOption overrides one execution knob for a single query (or, on
// Prepare, for every run of the statement). Engine-level resources — the
// worker pool, the chunk pool, the spill budget — are not per-query knobs
// and have no options here.
type QueryOption func(*queryConfig)

// WithStats collects per-operator execution statistics for the query.
func WithStats() QueryOption {
	return func(q *queryConfig) { q.exec.CollectStats = true }
}

// WithBufferSize overrides the joinbuffer/selectionbuffer size (1
// disables batching).
func WithBufferSize(n int) QueryOption {
	return func(q *queryConfig) { q.exec.BufferSize = n }
}

// WithMorselsPerWorker overrides the morsel fan-out factor of parallel
// operators.
func WithMorselsPerWorker(n int) QueryOption {
	return func(q *queryConfig) { q.exec.MorselsPerWorker = n }
}

// WithoutSelectJoin plans selections as separate operators instead of
// fusing the most selective one into the successive join — the paper's
// Figure 8 ablation, exposed for plan inspection. Only meaningful on
// Prepare/Query (it is a planning decision, not an execution one).
func WithoutSelectJoin() QueryOption {
	return func(q *queryConfig) { q.noSelectJoin = true }
}

// WithoutFusion disables pipeline fusion for the query: every
// single-consumer intermediate index is materialized, as in the paper's
// decomposed-plan model. The result is identical either way; the
// materialized plan reports per-operator index sizes where the fused one
// reports streamed combination counts (OperatorStats.Fused).
func WithoutFusion() QueryOption {
	return func(q *queryConfig) { q.exec.NoFuse = true }
}

// WithProbeBatch overrides the probe-forward batch size inside fused
// chains (1 = scalar combination-at-a-time forwarding, 0 = default). The
// result is identical at any setting; larger batches amortize shared tree
// descents across the batch's sorted keys.
func WithProbeBatch(n int) QueryOption {
	return func(q *queryConfig) { q.exec.ProbeBatch = n }
}
