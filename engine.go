// Package qppt is the public embedding surface of the QPPT engine — the
// prefix-tree query processing model of Kissinger et al. (CIDR 2013) as a
// long-lived, multi-query service instead of a one-shot plan executor.
//
// An Engine owns the execution resources whose value only shows across
// queries: the shared morsel-scheduler worker pool, a session-scoped chunk
// recycler (dropped intermediate indexes feed the next query's
// allocations), and one spill manager whose memory budget spans every
// concurrent plan. Sessions opened on the Engine compile and run SQL with
// context cancellation:
//
//	eng, _ := qppt.New(qppt.Config{Workers: 8, MemBudget: 512 << 20})
//	defer eng.Close()
//	sess := eng.Session(cat)
//	rows, _, err := sess.Query(ctx, "select d_year, sum(lo_revenue) ...")
//
// Plans built directly against internal/core run through the same engine
// with RunPlan. Everything an Engine does is also reachable one-shot
// (core.Plan.Run, sql.Statement.Run); the Engine is what a server keeps.
package qppt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qppt/internal/admission"
	"qppt/internal/arena"
	"qppt/internal/catalog"
	"qppt/internal/core"
	"qppt/internal/kernel"
	"qppt/internal/spill"
	"qppt/internal/sql"
)

// DefaultRecycleCap bounds the session chunk pool when Config.RecycleCap
// is zero: enough to carry the steady-state chunk population of a heavy
// analytical suite, small enough that one freak plan cannot pin its peak
// footprint for the engine's lifetime.
const DefaultRecycleCap = 256 << 20

// Config parameterizes an Engine. The zero value is a serial engine with
// cross-plan chunk recycling (capped at DefaultRecycleCap) and no memory
// budget.
type Config struct {
	// Workers sizes the shared worker pool every plan draws from
	// (core.WorkersAuto sizes it to GOMAXPROCS; 0 or 1 is serial). The
	// pool is an engine property: per-query options cannot resize it.
	Workers int
	// MorselsPerWorker is the default morsel fan-out of parallel
	// operators (0 = core default).
	MorselsPerWorker int
	// BufferSize is the default joinbuffer/selectionbuffer size
	// (0 = core default).
	BufferSize int
	// MemBudget caps the resident bytes of intermediate indexes across
	// all concurrent plans; cold intermediates spill to SpillDir and thaw
	// on access (0 = no spilling). MmapThaw selects the zero-copy restore
	// path.
	MemBudget int64
	SpillDir  string
	MmapThaw  bool
	// DisableRecycle turns the session chunk recycler off. By default the
	// engine recycles: cross-plan chunk reuse is most of why a long-lived
	// engine beats one-shot execution on steady query traffic.
	DisableRecycle bool
	// RecycleCap bounds the bytes the session chunk pool may retain;
	// chunks beyond it go to the garbage collector and are counted as
	// trim evictions in Stats. 0 means DefaultRecycleCap; negative means
	// unbounded.
	RecycleCap int64
	// DisableFusion turns off pipeline fusion engine-wide: every
	// single-consumer intermediate index is materialized as in the paper's
	// decomposed-plan model. Per-query, WithoutFusion does the same.
	DisableFusion bool
	// ProbeBatch is the default probe-forward batch size inside fused
	// chains (core.Options.ProbeBatch): 0 = core default, 1 = scalar
	// forwarding. Per-query, WithProbeBatch overrides it.
	ProbeBatch int
	// MaxPlans caps the plans executing concurrently: an admission gate
	// in front of RunPlan/Stmt.Run queues later arrivals per session
	// (round-robin across sessions, FIFO within) and answers
	// ErrOverloaded once a session's queue is QueueDepth deep — the
	// serving tier's backpressure. 0 disables admission control (the
	// historical unbounded behavior for embedded use).
	MaxPlans int
	// QueueDepth bounds each session's admission queue
	// (0 = admission.DefaultQueueDepth; meaningful only with MaxPlans).
	QueueDepth int
	// StmtCache is the per-Conn prepared-statement cache capacity:
	// 0 = DefaultStmtCacheSize, negative = caching disabled. Sessions
	// opened with Engine.Conn cache their planned statements in an LRU
	// keyed by SQL text, so repeated Binds of the same text skip
	// planning; Engine.Stats aggregates hit/miss/eviction counters.
	StmtCache int
}

// ErrEngineClosed is returned by every query entry point after Close.
var ErrEngineClosed = errors.New("qppt: engine is closed")

// ErrOverloaded is returned by query entry points when the caller's
// admission queue is full (Config.MaxPlans/QueueDepth): the engine is
// shedding load instead of buffering unboundedly. Servers surface it as
// a typed overload answer (wire.ClassOverloaded, HTTP 503); clients
// should back off and retry.
var ErrOverloaded = admission.ErrOverloaded

// An Engine is a long-lived query engine: one worker pool, one session
// chunk pool and one spill budget shared by every session and plan run
// against it. Engines are safe for concurrent use, including Close:
// queries that began before Close finish normally (Close drains them
// before tearing down the shared spill state), later ones fail with
// ErrEngineClosed.
type Engine struct {
	cfg     Config
	env     *core.Env
	queries atomic.Int64
	// gate is the admission controller (nil without Config.MaxPlans).
	gate     *admission.Gate
	nextSess atomic.Uint64

	// Per-Conn statement caches aggregate their counters here so
	// Stats reports cache traffic engine-wide.
	stmtHits    atomic.Int64
	stmtMisses  atomic.Int64
	stmtEvicted atomic.Int64
	stmtCached  atomic.Int64

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

// New builds an Engine from the configuration.
func New(cfg Config) (*Engine, error) {
	recycleCap := cfg.RecycleCap
	switch {
	case recycleCap == 0:
		recycleCap = DefaultRecycleCap
	case recycleCap < 0:
		recycleCap = 0 // unbounded
	}
	env, err := core.NewEnv(core.EnvConfig{
		Workers:    cfg.Workers,
		Recycle:    !cfg.DisableRecycle,
		RecycleCap: recycleCap,
		MemBudget:  cfg.MemBudget,
		SpillDir:   cfg.SpillDir,
		MmapThaw:   cfg.MmapThaw,
	})
	if err != nil {
		return nil, err
	}
	eng := &Engine{cfg: cfg, env: env}
	if cfg.MaxPlans > 0 {
		eng.gate = admission.New(admission.Config{MaxPlans: cfg.MaxPlans, QueueDepth: cfg.QueueDepth})
	}
	return eng, nil
}

// Env exposes the engine's execution environment for callers that drive
// core.Plan.RunCtx (or ssb.RunQPPTCtx, bench harnesses, tests) directly.
func (e *Engine) Env() *core.Env { return e.env }

// Workers reports the shared pool size.
func (e *Engine) Workers() int { return e.env.Workers() }

// Stats is a point-in-time snapshot of the engine's cross-plan resource
// counters.
type Stats struct {
	// Queries counts the plans executed through the engine since New.
	Queries int64
	// Workers is the shared pool size.
	Workers int
	// Recycler aggregates the session chunk pool's traffic — Reused and
	// SavedBytes are the cross-plan reuse the engine exists for;
	// TrimEvicted counts chunks the RecycleCap turned away.
	Recycler arena.RecyclerStats
	// Spill aggregates the shared spill manager's activity under
	// Config.MemBudget (zero without a budget).
	Spill spill.Stats
	// Kernel names the active batch-kernel dispatch target ("swar-amd64",
	// "swar", or "generic" when the fallback oracle is forced via
	// -nokernel / QPPT_KERNEL=off / a purego build).
	Kernel string
	// Admission snapshots the admission gate: current/peak queue depth,
	// cumulative queue wait time, admitted/rejected plans (zero without
	// Config.MaxPlans).
	Admission admission.Stats
	// StmtCache aggregates every Conn's prepared-statement cache
	// traffic: planning skipped (hits), planning paid (misses), LRU
	// evictions, and statements currently cached.
	StmtCache StmtCacheStats
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Queries:  e.queries.Load(),
		Workers:  e.env.Workers(),
		Recycler: e.env.RecyclerStats(),
		Spill:    e.env.SpillStats(),
		Kernel:   kernel.Mode(),
		StmtCache: StmtCacheStats{
			Hits:    e.stmtHits.Load(),
			Misses:  e.stmtMisses.Load(),
			Evicted: e.stmtEvicted.Load(),
			Cached:  e.stmtCached.Load(),
		},
	}
	if e.gate != nil {
		st.Admission = e.gate.Stats()
	}
	return st
}

func (s Stats) String() string {
	out := fmt.Sprintf("engine: %d queries on %d workers (batch kernels: %s)\n", s.Queries, s.Workers, s.Kernel)
	r := s.Recycler
	out += fmt.Sprintf("recycler: %d chunks parked (%s pooled), %d reused (%s of allocation avoided)",
		r.Recycled, spill.FormatBytes(r.PooledBytes), r.Reused, spill.FormatBytes(r.SavedBytes))
	if r.TrimEvicted > 0 {
		out += fmt.Sprintf(", %d trim-evicted (%s)", r.TrimEvicted, spill.FormatBytes(r.TrimEvictedBytes))
	}
	out += "\n"
	if sp := s.Spill; sp.Spills > 0 || sp.Restores > 0 || sp.Resident > 0 {
		out += fmt.Sprintf("spill: %d spills (%s out), %d restores (%s in), resident %s (peak %s)\n",
			sp.Spills, spill.FormatBytes(sp.SpillBytes), sp.Restores, spill.FormatBytes(sp.RestoreBytes),
			spill.FormatBytes(sp.Resident), spill.FormatBytes(sp.Peak))
	}
	if ad := s.Admission; ad.MaxPlans > 0 {
		out += fmt.Sprintf("admission: %d/%d plans running, %d queued (peak %d, depth cap %d/session), %d waited %v total, %d rejected\n",
			ad.Running, ad.MaxPlans, ad.Queued, ad.PeakQueued, ad.QueueDepth,
			ad.Waited, ad.WaitTime.Round(time.Millisecond), ad.Rejected)
	}
	if sc := s.StmtCache; sc.Hits > 0 || sc.Misses > 0 {
		out += fmt.Sprintf("stmt cache: %d hits, %d misses, %d evicted, %d cached\n",
			sc.Hits, sc.Misses, sc.Evicted, sc.Cached)
	}
	return out
}

// Close releases the engine's resources (spill files, temp directories).
// In-flight queries are drained first — the shared spill manager must not
// unmap or delete state a running plan still reads — and every later
// query fails with ErrEngineClosed. Results already returned stay valid.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.inflight.Wait()
	return e.env.Close()
}

// checkOpen guards non-executing entry points against use after Close.
func (e *Engine) checkOpen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	return nil
}

// begin registers one in-flight query; Close waits for its matching end.
// The closed check and the WaitGroup add happen under one lock, so a
// query either sees ErrEngineClosed or is fully drained by Close — never
// races the spill teardown.
func (e *Engine) begin() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.inflight.Add(1)
	return nil
}

func (e *Engine) end() { e.inflight.Done() }

// admit passes one plan through the admission gate for the session,
// blocking in the session's fair queue at the concurrency cap. It
// returns the release the caller must invoke when the plan finishes,
// plus how long the plan queued (folded into PlanStats as
// AdmissionWait). Without a gate it is free.
func (e *Engine) admit(ctx context.Context, session uint64) (release func(), wait time.Duration, err error) {
	if e.gate == nil {
		return func() {}, 0, nil
	}
	t0 := time.Now()
	if err := e.gate.Acquire(ctx, session); err != nil {
		return nil, 0, err
	}
	return e.gate.Release, time.Since(t0), nil
}

// Session opens a session against a catalog: the handle queries and
// prepared statements run through. Sessions are lightweight (a planner
// over the catalog plus the engine reference) and safe for concurrent
// use; open as many as there are clients. Each session is its own
// admission-fairness domain: under Config.MaxPlans the gate round-robins
// freed slots across sessions with queued plans.
func (e *Engine) Session(cat *catalog.Catalog) *Session {
	return &Session{eng: e, planner: sql.NewPlanner(cat), id: e.nextSess.Add(1)}
}

// Conn opens a session with a per-connection prepared-statement cache —
// the handle a server gives each client connection. PrepareCached plans
// each distinct SQL text once and serves repeats from an LRU of
// Config.StmtCache statements; Close releases the cache. Everything
// else behaves exactly like Session.
func (e *Engine) Conn(cat *catalog.Catalog) *Conn {
	s := e.Session(cat)
	s.cache = newStmtCache(e, e.cfg.StmtCache)
	return s
}

// RunPlan executes a hand-built core plan through the engine — the
// non-SQL entry point for embedders that construct operator DAGs
// directly.
// RunPlan callers share one admission-fairness domain (session 0): open
// a Session instead when per-client fairness matters.
func (e *Engine) RunPlan(ctx context.Context, plan *core.Plan, opts ...QueryOption) (*core.IndexedTable, *core.PlanStats, error) {
	if err := e.begin(); err != nil {
		return nil, nil, err
	}
	defer e.end()
	release, wait, err := e.admit(ctx, 0)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	e.queries.Add(1)
	exec := e.execOptions(opts)
	exec.AdmissionWait = wait
	return plan.RunCtx(ctx, e.env, exec)
}

// execOptions folds the engine defaults and the per-query overrides into
// the core execution options for one run.
func (e *Engine) execOptions(opts []QueryOption) core.Options {
	q := queryConfig{exec: core.Options{
		BufferSize:       e.cfg.BufferSize,
		MorselsPerWorker: e.cfg.MorselsPerWorker,
		NoFuse:           e.cfg.DisableFusion,
		ProbeBatch:       e.cfg.ProbeBatch,
	}}
	for _, o := range opts {
		o(&q)
	}
	return q.exec
}
