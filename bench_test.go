// Package qppt_test hosts the testing.B entry points that regenerate the
// paper's figures, one benchmark family per table/figure:
//
//	go test -bench BenchmarkFigure3a -benchmem .   # Fig. 3(a) inserts
//	go test -bench BenchmarkFigure3b -benchmem .   # Fig. 3(b) lookups
//	go test -bench BenchmarkFigure7  -benchmem .   # Fig. 7  SSB queries × engines
//	go test -bench BenchmarkFigure8  -benchmem .   # Fig. 8  select-join ablation
//	go test -bench BenchmarkFigure9  -benchmem .   # Fig. 9  join-arity ablation
//	go test -bench BenchmarkAblation -benchmem .   # design-choice ablations
//
// Benchmarks default to laptop-scale inputs (QPPT_BENCH_SF and
// QPPT_BENCH_KEYS environment variables scale them up); cmd/qpptbench
// runs the full paper-scale sweeps and prints the figures as tables.
package qppt_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"qppt/internal/bench"
	"qppt/internal/core"
	"qppt/internal/ssb"
)

var (
	dsOnce sync.Once
	dsSSB  *ssb.Dataset
)

func benchSF() float64 {
	if s := os.Getenv("QPPT_BENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.1
}

func benchKeys() int {
	if s := os.Getenv("QPPT_BENCH_KEYS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 1_000_000
}

func dataset(b *testing.B) *ssb.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		dsSSB = ssb.MustLoad(ssb.GenConfig{SF: benchSF(), Seed: 42})
		if err := bench.WarmupQueries(dsSSB); err != nil {
			panic(err)
		}
	})
	return dsSSB
}

// BenchmarkFigure3a regenerates Figure 3(a): insert/update time per key.
func BenchmarkFigure3a(b *testing.B) {
	n := benchKeys()
	for _, structure := range bench.Fig3Structures {
		b.Run(fmt.Sprintf("%s/keys=%d", structure, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := bench.Figure3aOne(structure, n)
				b.ReportMetric(rows, "ns/key")
			}
		})
	}
}

// BenchmarkFigure3b regenerates Figure 3(b): lookup time per key.
func BenchmarkFigure3b(b *testing.B) {
	n := benchKeys()
	for _, structure := range bench.Fig3Structures {
		b.Run(fmt.Sprintf("%s/keys=%d", structure, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := bench.Figure3bOne(structure, n)
				b.ReportMetric(rows, "ns/key")
			}
		})
	}
}

// BenchmarkFigure7 regenerates Figure 7: every SSB query on every engine.
func BenchmarkFigure7(b *testing.B) {
	ds := dataset(b)
	for _, qid := range ssb.QueryIDs {
		b.Run("Q"+qid+"/qppt", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.RunQPPT(qid, ssb.DefaultPlanOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Q"+qid+"/vector", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ds.RunVector(qid); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Q"+qid+"/column", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ds.RunColumn(qid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure8 regenerates Figure 8: Q1.1 with and without the
// composed select-join-group operator.
func BenchmarkFigure8(b *testing.B) {
	ds := dataset(b)
	for _, cfg := range []struct {
		name string
		sj   bool
	}{{"with-select-join", true}, {"without-select-join", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.RunQPPT("1.1", ssb.PlanOptions{UseSelectJoin: cfg.sj}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure9 regenerates Figure 9: Q4.1 under join-arity caps.
func BenchmarkFigure9(b *testing.B) {
	ds := dataset(b)
	for arity := 2; arity <= 5; arity++ {
		b.Run(fmt.Sprintf("%d-way", arity), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.RunQPPT("4.1", ssb.PlanOptions{JoinArity: arity}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoinBuffer sweeps the demonstrator's joinbuffer size.
func BenchmarkAblationJoinBuffer(b *testing.B) {
	ds := dataset(b)
	for _, size := range []int{1, 64, 512, 2048} {
		b.Run(fmt.Sprintf("buffer=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := ssb.PlanOptions{UseSelectJoin: true, Exec: core.Options{BufferSize: size}}
				if _, _, err := ds.RunQPPT("2.3", opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKPrime measures the Section 2.1 k' trade-off.
func BenchmarkAblationKPrime(b *testing.B) {
	n := benchKeys()
	b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows := bench.AblationKPrime(n)
			for _, r := range rows {
				b.ReportMetric(r.InsertNs, fmt.Sprintf("k%d-%s-ins-ns/key", r.KPrime, r.Dist))
			}
		}
	})
}

// BenchmarkAblationKISSCompression measures the Section 2.2 RCU trade-off.
func BenchmarkAblationKISSCompression(b *testing.B) {
	n := benchKeys()
	b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows := bench.AblationKISSCompression(n)
			for _, r := range rows {
				b.ReportMetric(r.InsertNs, fmt.Sprintf("%s-compress=%v-ns/key", r.Dist, r.Compress))
			}
		}
	})
}

// BenchmarkAblationDuplicates compares Figure 4's segmented duplicates to
// a naive linked list.
func BenchmarkAblationDuplicates(b *testing.B) {
	names := map[string]string{"segmented (Fig. 4)": "segmented", "linked list": "linked"}
	for i := 0; i < b.N; i++ {
		rows := bench.AblationDuplicates(1_000_000, 2, 3)
		for _, r := range rows {
			b.ReportMetric(r.ScanNs, names[r.Layout]+"-ns/row")
		}
	}
}

// BenchmarkAblationBatchSize sweeps the Section 2.3 batch size.
func BenchmarkAblationBatchSize(b *testing.B) {
	n := benchKeys()
	for i := 0; i < b.N; i++ {
		rows := bench.AblationBatchSize(n)
		for _, r := range rows {
			b.ReportMetric(r.LookupNs, fmt.Sprintf("batch%d-ns/key", r.BatchSize))
		}
	}
}
