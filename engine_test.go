package qppt_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qppt"
	"qppt/internal/ssb"
)

var (
	engDSOnce sync.Once
	engDS     *ssb.Dataset
)

func engineDataset(t testing.TB) *ssb.Dataset {
	t.Helper()
	engDSOnce.Do(func() {
		engDS = ssb.MustLoad(ssb.GenConfig{SF: 0.02, Seed: 42})
	})
	return engDS
}

// oneShotResults runs every SSB query through a throwaway statement per
// query — the historical one-shot mode — as the reference the engine
// paths must reproduce bit-identically.
func oneShotResults(t *testing.T, ds *ssb.Dataset) map[string][][]uint64 {
	t.Helper()
	ref := make(map[string][][]uint64, len(ssb.QueryIDs))
	eng, err := qppt.New(qppt.Config{DisableRecycle: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess := eng.Session(ds.Cat)
	for _, qid := range ssb.QueryIDs {
		rows, _, err := sess.Query(context.Background(), ssb.SQLTexts[qid])
		if err != nil {
			t.Fatalf("Q%s one-shot: %v", qid, err)
		}
		ref[qid] = rows.Rows
	}
	return ref
}

// TestEngineMatchesOneShot: the full suite through one engine session
// must reproduce the one-shot results bit-identically across the engine
// configuration matrix — serial and parallel, with and without a memory
// budget — and the second pass of each engine must show cross-plan chunk
// reuse in the engine stats.
func TestEngineMatchesOneShot(t *testing.T) {
	ds := engineDataset(t)
	ref := oneShotResults(t, ds)

	configs := []struct {
		name string
		cfg  qppt.Config
	}{
		{"serial", qppt.Config{}},
		{"serial+budget", qppt.Config{MemBudget: 1 << 20}},
		{"parallel", qppt.Config{Workers: 4}},
		{"parallel+budget", qppt.Config{Workers: 4, MemBudget: 1 << 20, MmapThaw: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := qppt.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			sess := eng.Session(ds.Cat)
			for pass := 0; pass < 2; pass++ {
				for _, qid := range ssb.QueryIDs {
					rows, _, err := sess.Query(context.Background(), ssb.SQLTexts[qid])
					if err != nil {
						t.Fatalf("pass %d Q%s: %v", pass, qid, err)
					}
					if !reflect.DeepEqual(rows.Rows, ref[qid]) {
						t.Errorf("pass %d Q%s: engine result differs (%d vs %d rows)",
							pass, qid, len(rows.Rows), len(ref[qid]))
					}
				}
			}
			st := eng.Stats()
			if st.Queries != 2*int64(len(ssb.QueryIDs)) {
				t.Errorf("engine counted %d queries, want %d", st.Queries, 2*len(ssb.QueryIDs))
			}
			if st.Recycler.Reused == 0 {
				t.Errorf("engine ran the suite twice with no cross-plan chunk reuse: %+v", st.Recycler)
			}
			if tc.cfg.MemBudget > 0 && st.Spill.Spills == 0 {
				t.Errorf("budgeted engine never spilled: %+v", st.Spill)
			}
		})
	}
}

// TestEngineConcurrentSessions: N goroutines hammer one engine — shared
// worker pool, shared recycler, shared spill budget — and every result
// must stay bit-identical to the serial one-shot reference. Run under
// -race (CI does), this is the concurrency proof of the session-scoped
// resource sharing.
func TestEngineConcurrentSessions(t *testing.T) {
	ds := engineDataset(t)
	ref := oneShotResults(t, ds)

	spillDir := t.TempDir()
	eng, err := qppt.New(qppt.Config{
		Workers:   4,
		MemBudget: 1 << 20, // force spilling under concurrency too
		SpillDir:  spillDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := eng.Session(ds.Cat)
			for i, qid := range ssb.QueryIDs {
				// Stagger the starting point so the clients overlap on
				// different queries.
				qid = ssb.QueryIDs[(i+c)%len(ssb.QueryIDs)]
				rows, _, err := sess.Query(context.Background(), ssb.SQLTexts[qid])
				if err != nil {
					errs[c] = fmt.Errorf("client %d Q%s: %w", c, qid, err)
					return
				}
				if !reflect.DeepEqual(rows.Rows, ref[qid]) {
					errs[c] = fmt.Errorf("client %d Q%s: result differs (%d vs %d rows)",
						c, qid, len(rows.Rows), len(ref[qid]))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.Recycler.Reused == 0 {
		t.Errorf("concurrent suite showed no cross-plan chunk reuse: %+v", st.Recycler)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	assertNoSpillFiles(t, spillDir)
	assertNoLeakedGoroutines(t)
}

// TestEngineConcurrentFirstTouch: concurrent queries against a *fresh*
// catalog race to build the base indexes their plans need — the serve
// mode's exact situation (one shared Session, cold caches). The catalog's
// index cache must serialize the builds; under -race this guards the
// planner→BuildIndex path.
func TestEngineConcurrentFirstTouch(t *testing.T) {
	ds := ssb.MustLoad(ssb.GenConfig{SF: 0.005, Seed: 99}) // private cold catalog
	eng, err := qppt.New(qppt.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sess := eng.Session(ds.Cat) // one session shared by every client
	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range ssb.QueryIDs {
				qid := ssb.QueryIDs[(i+c)%len(ssb.QueryIDs)]
				if _, _, err := sess.Query(context.Background(), ssb.SQLTexts[qid]); err != nil {
					errs[c] = fmt.Errorf("client %d Q%s: %w", c, qid, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineCancellation: a query cancelled mid-run must return
// context.Canceled, leave no spill files behind, and leave the engine
// healthy for the next query.
func TestEngineCancellation(t *testing.T) {
	ds := engineDataset(t)
	spillDir := t.TempDir()
	eng, err := qppt.New(qppt.Config{Workers: 2, MemBudget: 1 << 20, SpillDir: spillDir})
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.Session(ds.Cat)

	// Pre-cancelled context: must fail immediately with ctx.Err().
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sess.Query(pre, ssb.SQLTexts["4.1"]); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query returned %v, want context.Canceled", err)
	}

	// Mid-run cancellation: sweep cancel delays so at least some land
	// while the plan is executing; whatever the timing, the only allowed
	// outcomes are a clean result or context.DeadlineExceeded.
	sawCancel := false
	for _, delay := range []time.Duration{50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		_, _, err := sess.Query(ctx, ssb.SQLTexts["4.1"])
		cancel()
		switch {
		case err == nil:
			// Finished before the deadline — fine.
		case errors.Is(err, context.DeadlineExceeded):
			sawCancel = true
		default:
			t.Fatalf("cancelled query (delay %v) returned %v, want nil or context.DeadlineExceeded", delay, err)
		}
	}
	if !sawCancel {
		t.Log("no cancellation landed mid-run (fast machine or tiny dataset); covered by the pre-cancelled case")
	}

	// The engine must still answer correctly after cancellations.
	if _, _, err := sess.Query(context.Background(), ssb.SQLTexts["1.1"]); err != nil {
		t.Fatalf("query after cancellations: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	assertNoSpillFiles(t, spillDir)
	assertNoLeakedGoroutines(t)
}

// TestEngineCloseDrainsInFlight: Close must wait for queries that
// already began — tearing down the shared spill state under a running
// plan would fail it with I/O errors (or worse, unmap pages it reads).
// The only legal outcomes for the racing query are success (it began
// first) or ErrEngineClosed (Close won).
func TestEngineCloseDrainsInFlight(t *testing.T) {
	ds := engineDataset(t)
	eng, err := qppt.New(qppt.Config{Workers: 2, MemBudget: 1 << 20, MmapThaw: true})
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.Session(ds.Cat)
	stmt, err := sess.Prepare(context.Background(), ssb.SQLTexts["4.1"])
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := stmt.Run(context.Background())
		done <- err
	}()
	time.Sleep(200 * time.Microsecond) // land Close mid-run when possible
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, qppt.ErrEngineClosed) {
		t.Fatalf("in-flight query failed during Close: %v", err)
	}
}

// TestEngineClosedRejectsQueries: use after Close fails cleanly.
func TestEngineClosedRejectsQueries(t *testing.T) {
	ds := engineDataset(t)
	eng, err := qppt.New(qppt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.Session(ds.Cat)
	stmt, err := sess.Prepare(context.Background(), ssb.SQLTexts["1.1"])
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Query(context.Background(), ssb.SQLTexts["1.1"]); err == nil {
		t.Error("Query on a closed engine succeeded")
	}
	if _, _, err := stmt.Run(context.Background()); err == nil {
		t.Error("Stmt.Run on a closed engine succeeded")
	}
}

// assertNoSpillFiles checks that the engine's spill directory holds no
// leftover snapshots after Close.
func assertNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	var left []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			left = append(left, path)
		}
		return nil
	})
	if len(left) > 0 {
		t.Errorf("spill files left after Close: %v", left)
	}
}

// assertNoLeakedGoroutines waits briefly for helper goroutines to drain
// and fails if execution goroutines survive. The check is by count with a
// grace period — the runtime keeps a few background goroutines of its own.
func assertNoLeakedGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	base := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		if n := runtime.NumGoroutine(); n <= base {
			base = n
		}
		if leakedExecGoroutines() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("execution goroutines still running:\n%s", buf[:n])
}

// leakedExecGoroutines counts goroutines parked inside this module's
// execution paths (core scheduler loops, spill waits).
func leakedExecGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "qppt/internal/core.") || strings.Contains(g, "qppt/internal/spill.") {
			count++
		}
	}
	return count
}
