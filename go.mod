module qppt

go 1.22
