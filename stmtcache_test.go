package qppt_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"qppt"
	"qppt/internal/ssb"
)

// TestConnStmtCache: Engine.Conn sessions cache prepared statements in
// an LRU with engine-wide hit/miss/eviction counters; plain Sessions
// never cache.
func TestConnStmtCache(t *testing.T) {
	ds := engineDataset(t)
	eng, err := qppt.New(qppt.Config{Workers: 2, StmtCache: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	conn := eng.Conn(ds.Cat)
	ctx := context.Background()

	a, err := conn.PrepareCached(ctx, ssb.SQLTexts["1.1"])
	if err != nil {
		t.Fatal(err)
	}
	b, err := conn.PrepareCached(ctx, ssb.SQLTexts["1.1"])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second PrepareCached of one text returned a different statement")
	}
	st := eng.Stats().StmtCache
	if st.Hits != 1 || st.Misses != 1 || st.Cached != 1 {
		t.Errorf("after one repeat: stats %+v, want 1 hit / 1 miss / 1 cached", st)
	}

	// Capacity 2: a third distinct text evicts the least recently used.
	if _, err := conn.PrepareCached(ctx, ssb.SQLTexts["2.1"]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.PrepareCached(ctx, ssb.SQLTexts["3.1"]); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats().StmtCache
	if st.Evicted != 1 || st.Cached != 2 {
		t.Errorf("after overflow: stats %+v, want 1 evicted / 2 cached", st)
	}
	// 1.1 was evicted (LRU); re-preparing it is a miss, 3.1 stays a hit.
	if _, err := conn.PrepareCached(ctx, ssb.SQLTexts["3.1"]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.PrepareCached(ctx, ssb.SQLTexts["1.1"]); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats().StmtCache
	if st.Hits != 2 || st.Misses != 4 || st.Evicted != 2 {
		t.Errorf("after LRU churn: stats %+v, want 2 hits / 4 misses / 2 evicted", st)
	}

	// Cached statements stay runnable and correct.
	rows, _, err := b.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := eng.Session(ds.Cat).Query(ctx, ssb.SQLTexts["1.1"])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != len(ref.Rows) {
		t.Errorf("cached statement returned %d rows, want %d", len(rows.Rows), len(ref.Rows))
	}

	// Close drops the connection's entries from the engine-wide gauge.
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats().StmtCache; st.Cached != 0 {
		t.Errorf("cached gauge %d after Conn.Close, want 0", st.Cached)
	}

	// Plain sessions never cache.
	sess := eng.Session(ds.Cat)
	before := eng.Stats().StmtCache
	if _, err := sess.PrepareCached(ctx, ssb.SQLTexts["1.1"]); err != nil {
		t.Fatal(err)
	}
	if after := eng.Stats().StmtCache; after != before {
		t.Errorf("plain Session touched the statement cache: %+v -> %+v", before, after)
	}
}

// TestEngineAdmission: with MaxPlans set, concurrent queries pass the
// gate (all admitted, results correct), Stats reports the traffic, and
// PlanStats carries the queue wait.
func TestEngineAdmission(t *testing.T) {
	ds := engineDataset(t)
	eng, err := qppt.New(qppt.Config{Workers: 2, MaxPlans: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ref, _, err := eng.Session(ds.Cat).Query(context.Background(), ssb.SQLTexts["2.2"])
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := eng.Session(ds.Cat)
			rows, _, err := sess.Query(context.Background(), ssb.SQLTexts["2.2"])
			if err != nil {
				errs <- err
				return
			}
			if len(rows.Rows) != len(ref.Rows) {
				errs <- errors.New("result changed under admission control")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := eng.Stats()
	if st.Admission.MaxPlans != 1 || st.Admission.Admitted < n {
		t.Errorf("admission stats %+v, want MaxPlans 1 and >= %d admitted", st.Admission, n)
	}
	if st.Admission.Running != 0 || st.Admission.Queued != 0 {
		t.Errorf("gate not drained: %+v", st.Admission)
	}
	if s := st.String(); s == "" {
		t.Error("Stats.String() empty")
	}
}

// TestEngineNoAdmission: the zero config keeps the gate off — Stats
// reports an empty admission block and queries never wait.
func TestEngineNoAdmission(t *testing.T) {
	ds := engineDataset(t)
	eng, err := qppt.New(qppt.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, _, err := eng.Session(ds.Cat).Query(context.Background(), ssb.SQLTexts["1.2"]); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats().Admission; st.MaxPlans != 0 || st.Admitted != 0 {
		t.Errorf("gate active without MaxPlans: %+v", st)
	}
}
