// Command qpptbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	qpptbench -fig 3a|3b|7|8|9|joinbuffer|workers|kprime|compression|duplicates|batch|memlife|fusion|probe|kernel|engine|serve|all
//	          [-sf 0.5] [-reps 3] [-sizes 1000000,4000000,16000000]
//	          [-workers N] [-morsels M] [-buffer B] [-membudget 256MiB]
//	          [-recycle] [-mmapthaw]
//	          [-benchjson BENCH_qppt.json] [-benchlabel PR-5]
//
// -benchjson appends a machine-readable perf snapshot (per-query ms, the
// memory-lifecycle ablation) to the snapshot history in the given file,
// so the perf trajectory accumulates across PRs; -benchlabel names the
// snapshot. A pre-history file holding a single snapshot object is
// absorbed as the first history entry, and the retired arena-vs-pointer
// layout rows of older snapshots are preserved verbatim.
//
// -membudget runs the figure-7 QPPT rows a second time under that
// intermediate-index memory budget (index spilling enabled) and records
// them with a membudget= config label — the spill-enabled configuration of
// the perf trajectory. Accepts plain bytes or K/M/G suffixes. -recycle and
// -mmapthaw enable the plan-scoped chunk recycler and the zero-copy mmap
// restore for the QPPT engine rows (and are recorded in the config
// labels); -fig memlife runs the dedicated memory-lifecycle ablation
// (allocs, GC pause, thaw bytes read) across those configurations;
// -fig fusion compares fused and materialized execution of the suite on
// the decomposed plans (fused-edge counts, streamed combinations, and a
// bit-identity check per query); -fig probe isolates the batched probe
// forwarding inside fused chains (batched vs scalar vs materialized, with
// batch counts and average fill); -fig kernel isolates the SWAR batch
// kernels inside the batched pipeline (kernel vs scalar fallback vs
// materialized, with descent-strategy counts and a three-way bit-identity
// check). -nofuse turns pipeline fusion off for
// every other figure's QPPT rows; -probebatch sets the probe-forward
// batch size they run with (1 = scalar); -nokernel forces the scalar
// kernel fallback everywhere.
//
// -workers > 1 runs the QPPT engine rows of figures 7, 8 and 9 on a
// shared worker pool of that size (morsel-driven parallelism); -morsels
// tunes the per-worker morsel fan-out. The baselines always run
// single-threaded, and the ablations control their own configuration
// (the workers ablation sweeps the pool size itself).
//
// -fig engine times the thirteen-query suite one-shot (per-plan pools)
// against engine-reused execution (one core.Env across the suite, the
// qppt.Engine configuration) and records both row sets in the snapshot —
// the cross-plan resource-reuse trajectory of the Engine/Session API.
//
// -fig serve drives the serving tier: sweeps of concurrent wire-protocol
// clients (in-process pipes, full handshake/framing) running the suite
// through one engine, reporting throughput, admission-queue waits and
// statement-cache hits. -max-plans enables the admission gate for the
// sweep; -reps sets the passes per client.
//
// Absolute numbers will differ from the paper's C/C++ system; the point
// is to reproduce the shapes: who wins, by roughly what factor, and where
// the crossovers fall. EXPERIMENTS.md records paper-vs-measured values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"qppt"
	"qppt/internal/bench"
	"qppt/internal/cliflags"
	"qppt/internal/spill"
	"qppt/internal/ssb"
)

// benchSnapshot is one perf record. -benchjson appends it to the snapshot
// history so per-PR records accumulate into a perf trajectory.
type benchSnapshot struct {
	Label     string            `json:"label,omitempty"`
	When      string            `json:"when,omitempty"`
	SF        float64           `json:"sf"`
	Workers   int               `json:"workers"`
	GoMaxP    int               `json:"gomaxprocs"`
	MemBudget int64             `json:"membudget,omitempty"`
	Recycle   bool              `json:"recycle,omitempty"`
	MmapThaw  bool              `json:"mmapthaw,omitempty"`
	Queries   []bench.QueryTime `json:"queries,omitempty"`
	// Layout carries the retired arena-vs-pointer ablation of older
	// snapshots verbatim, so appending never rewrites recorded history.
	Layout  json.RawMessage    `json:"layout,omitempty"`
	MemLife []bench.MemLifeRow `json:"memlife,omitempty"`
	Fusion  []bench.FusionRow  `json:"fusion,omitempty"`
	Probe   []bench.ProbeRow   `json:"probe,omitempty"`
	Kernel  []bench.KernelRow  `json:"kernel,omitempty"`
	Serve   []bench.ServeRow   `json:"serve,omitempty"`
}

// benchHistory is the BENCH_qppt.json layout: snapshots in append order.
type benchHistory struct {
	Snapshots []benchSnapshot `json:"snapshots"`
}

// appendSnapshot loads the history at path (absorbing a legacy single-
// snapshot file), appends snap, and writes it back. An existing file that
// cannot be read or parsed is an error — silently replacing it would
// discard the accumulated perf trajectory.
func appendSnapshot(path string, snap benchSnapshot) error {
	var hist benchHistory
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// First snapshot: start a fresh history.
	case err != nil:
		return fmt.Errorf("read %s: %w", path, err)
	default:
		if jerr := json.Unmarshal(data, &hist); jerr != nil || len(hist.Snapshots) == 0 {
			var legacy benchSnapshot
			if jerr2 := json.Unmarshal(data, &legacy); jerr2 == nil && (legacy.Queries != nil || len(legacy.Layout) > 0) {
				hist.Snapshots = []benchSnapshot{legacy}
			} else if jerr != nil {
				return fmt.Errorf("parse %s (refusing to overwrite history): %w", path, jerr)
			}
		}
	}
	hist.Snapshots = append(hist.Snapshots, snap)
	out, err := json.MarshalIndent(&hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 7, 8, 9, joinbuffer, workers, kprime, compression, duplicates, batch, memlife, fusion, probe, kernel, engine, serve, all")
	sf := flag.Float64("sf", 0.5, "SSB scale factor for figures 7-9 (the paper uses 15)")
	reps := flag.Int("reps", 3, "repetitions per query timing (best-of)")
	sizesFlag := flag.String("sizes", "1000000,4000000,16000000", "index sizes for figure 3")
	seed := flag.Int64("seed", 42, "data generator seed")
	execFlags := cliflags.Register(flag.CommandLine)
	benchjson := flag.String("benchjson", "", "append a JSON perf snapshot (query times, memory-lifecycle ablation) to the history in this file")
	benchlabel := flag.String("benchlabel", "", "label for the appended perf snapshot (e.g. the PR number)")
	flag.Parse()
	execFlags.ApplyRuntime()
	execAll, err := execFlags.ExecOptions()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad flags: %v\n", err)
		os.Exit(2)
	}
	// The unbudgeted figure rows run without spilling; the -membudget
	// configuration is timed as its own row set where a figure asks for it.
	budget := execAll.MemBudget
	exec := execAll
	exec.MemBudget = 0
	snap := benchSnapshot{
		Label: *benchlabel, When: time.Now().UTC().Format(time.RFC3339),
		SF: *sf, Workers: exec.Workers, GoMaxP: runtime.GOMAXPROCS(0), MemBudget: budget,
		Recycle: exec.Recycle, MmapThaw: exec.MmapThaw,
	}

	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -sizes entry %q: %v\n", s, err)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	// -fig accepts a single figure name, "all", or a comma-separated list
	// (e.g. -fig 7,layout for one perf snapshot covering both).
	wants := func(name string) bool {
		for _, f := range strings.Split(*fig, ",") {
			if f = strings.TrimSpace(f); f == "all" || f == name {
				return true
			}
		}
		return false
	}
	var ds *ssb.Dataset
	dataset := func() *ssb.Dataset {
		if ds == nil {
			fmt.Printf("loading SSB SF=%g (seed %d)...\n", *sf, *seed)
			ds = ssb.MustLoad(ssb.GenConfig{SF: *sf, Seed: *seed})
			if err := bench.WarmupQueries(ds); err != nil {
				fatal(err)
			}
			fmt.Printf("loaded: %d lineorder rows\n\n", ds.Lineorder.Rows())
		}
		return ds
	}

	if wants("3a") {
		fmt.Println("=== Figure 3(a): insert/update performance [ns/key] ===")
		printFig3(bench.Figure3a(sizes))
	}
	if wants("3b") {
		fmt.Println("=== Figure 3(b): lookup performance [ns/key] ===")
		printFig3(bench.Figure3b(sizes))
	}
	if wants("7") {
		fmt.Printf("=== Figure 7: SSB query performance, SF=%g [ms] ===\n", *sf)
		rows, err := bench.Figure7Exec(dataset(), *reps, exec)
		if err != nil {
			fatal(err)
		}
		printQueryTimes(rows)
		snap.Queries = append(snap.Queries, rows...)
		if budget > 0 {
			fmt.Printf("=== Figure 7 (QPPT rows) under -membudget %s (index spilling) [ms] ===\n", execFlags.MemBudget)
			spillExec := exec
			spillExec.MemBudget = budget
			cfgLabel := fmt.Sprintf("membudget=%s", execFlags.MemBudget)
			if exec.Recycle {
				cfgLabel += ",recycle"
			}
			if exec.MmapThaw {
				cfgLabel += ",mmapthaw"
			}
			srows, err := bench.QPPTTimes(dataset(), *reps, spillExec, cfgLabel)
			if err != nil {
				fatal(err)
			}
			printQueryTimes(srows)
			snap.Queries = append(snap.Queries, srows...)
		}
	}
	if wants("8") {
		fmt.Println("=== Figure 8: SSB Q1.1 with and without select-join [ms] ===")
		rows, err := bench.Figure8Exec(dataset(), *reps, exec)
		if err != nil {
			fatal(err)
		}
		printQueryTimes(rows)
		share, err := bench.Figure8SelectionShare(dataset())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  selection share of the w/o-select-join plan: %.0f%% (paper: ~95%%)\n\n", share*100)
	}
	if wants("9") {
		fmt.Println("=== Figure 9: SSB Q4.1 multi-way join configurations [ms] ===")
		rows, err := bench.Figure9Exec(dataset(), *reps, exec)
		if err != nil {
			fatal(err)
		}
		printQueryTimes(rows)
	}
	if wants("workers") {
		fmt.Println("=== Ablation: shared worker pool size (morsel-driven parallelism, Section 7) [ms] ===")
		rows, err := bench.AblationWorkers(dataset(), *reps)
		if err != nil {
			fatal(err)
		}
		printQueryTimes(rows)
	}
	if wants("joinbuffer") {
		fmt.Println("=== Ablation: joinbuffer size on Q2.3 (demonstrator knob) [ms] ===")
		rows, err := bench.AblationJoinBuffer(dataset(), *reps)
		if err != nil {
			fatal(err)
		}
		printQueryTimes(rows)
	}
	if wants("kprime") {
		fmt.Println("=== Ablation: prefix length k' (Section 2.1) ===")
		n := min(sizes[0], 2000000)
		for _, r := range bench.AblationKPrime(n) {
			fmt.Printf("  k'=%d %-6s  insert %7.1f ns/key  lookup %7.1f ns/key  %6.1f B/key\n",
				r.KPrime, r.Dist, r.InsertNs, r.LookupNs, r.BytesPerKey)
		}
		fmt.Println()
	}
	if wants("compression") {
		fmt.Println("=== Ablation: KISS bitmask compression (Section 2.2) ===")
		n := min(sizes[0], 2000000)
		for _, r := range bench.AblationKISSCompression(n) {
			fmt.Printf("  %-6s compress=%-5v  insert %7.1f ns/key  %8.2f MB  RCU copies %d\n",
				r.Dist, r.Compress, r.InsertNs, float64(r.Bytes)/1e6, r.RCUCopies)
		}
		fmt.Println()
	}
	if wants("duplicates") {
		fmt.Println("=== Ablation: duplicate handling (Section 2.4, Figure 4) ===")
		for _, r := range bench.AblationDuplicates(1000000, 2, 5) {
			fmt.Printf("  %-20s scan %6.2f ns/row  %8.2f MB\n",
				r.Layout, r.ScanNs, float64(r.Bytes)/1e6)
		}
		fmt.Println()
	}
	if wants("batch") {
		fmt.Println("=== Ablation: batch lookup size (Section 2.3) ===")
		n := min(sizes[len(sizes)-1], 8000000)
		for _, r := range bench.AblationBatchSize(n) {
			fmt.Printf("  batch %5d  lookup %7.1f ns/key\n", r.BatchSize, r.LookupNs)
		}
		fmt.Println()
	}
	if wants("engine") {
		fmt.Println("=== Engine reuse: 13-query suite, one-shot vs engine-reused (shared pool + cross-plan recycler) [ms] ===")
		recycleCap, err := execFlags.RecycleCapBytes()
		if err != nil {
			fatal(err)
		}
		if recycleCap == 0 {
			// Match a default-configured qppt.Engine, whose session pool is
			// capped — an unbounded pool would overstate reuse at scale.
			recycleCap = qppt.DefaultRecycleCap
		}
		// Unlike the fig-7 rows, the engine comparison honors -membudget
		// directly: the point is the full engine configuration, and the
		// row labels record the budgeted runs.
		rows, reuse, err := bench.EngineReuseCompare(dataset(), *reps, execAll, recycleCap)
		if err != nil {
			fatal(err)
		}
		printQueryTimes(rows)
		fmt.Printf("  engine recycler after the suite: %d chunks reused across plans, %s of allocation avoided\n\n",
			reuse.Reused, spill.FormatBytes(reuse.SavedBytes))
		snap.Queries = append(snap.Queries, rows...)
	}
	if wants("serve") {
		fmt.Println("=== Serving tier: concurrent wire-protocol clients over one engine (13-query suite) ===")
		rows, err := bench.ServeBench(dataset(), execAll, execFlags.MaxPlans, []int{1, 2, 4, 8}, *reps)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			gate := "gate off"
			if r.MaxPlans > 0 {
				gate = fmt.Sprintf("max-plans %d", r.MaxPlans)
			}
			fmt.Printf("  %2d clients  %-12s %9.1f ms  %8.1f q/s  avg queue wait %8.1f µs  stmt-cache hits %5d  shed %d\n",
				r.Clients, gate, r.Millis, r.QPS, r.AvgWaitMicros, r.StmtHits, r.Shed)
		}
		fmt.Println()
		snap.Serve = rows
	}
	if wants("memlife") {
		fmt.Println("=== Ablation: plan memory lifecycle (recycler, mmap/partial thaw) over the SSB suite ===")
		rows, err := bench.AblationMemLifecycle(dataset(), *reps)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("  %-24s %9.1f ms  alloc %8.2f MB (%9d objs)  GC pause %6.2f ms (%3d cycles)  thaw-read %10s  reused %6d chunks (%s saved)\n",
				r.Config, r.Millis, float64(r.AllocBytes)/1e6, r.Allocs,
				float64(r.GCPauseNs)/1e6, r.NumGC, spill.FormatBytes(r.ThawBytesRead),
				r.ChunksReused, spill.FormatBytes(r.SavedBytes))
		}
		fmt.Println()
		snap.MemLife = rows
	}
	if wants("fusion") {
		fmt.Println("=== Ablation: pipeline fusion vs materialized intermediates (decomposed plans) over the SSB suite [ms] ===")
		rows, err := bench.AblationFusion(dataset(), *reps)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("  Q%-4s fused %8.1f ms  materialized %8.1f ms  %d indexes skipped  %9d combinations streamed  identical=%v\n",
				r.Query, r.FusedMillis, r.UnfusedMillis, r.FusedEdges, r.TuplesStreamed, r.Identical)
		}
		fmt.Println()
		snap.Fusion = rows
	}
	if wants("probe") {
		fmt.Println("=== Ablation: batched vs scalar probe forwarding in fused chains (decomposed plans) over the SSB suite [ms] ===")
		rows, err := bench.AblationProbe(dataset(), *reps)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("  Q%-4s batched %8.1f ms  scalar %8.1f ms  materialized %8.1f ms  %6d batches (avg fill %6.1f)  identical=%v\n",
				r.Query, r.BatchedMillis, r.ScalarMillis, r.MaterializedMillis, r.ProbeBatches, r.AvgBatchFill, r.Identical)
		}
		fmt.Println()
		snap.Probe = rows
	}
	if wants("kernel") {
		fmt.Println("=== Ablation: SWAR batch kernels vs scalar fallback (fused batched plans) over the SSB suite [ms] ===")
		rows, err := bench.AblationKernel(dataset(), *reps)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("  Q%-4s kernel %8.1f ms  scalar %8.1f ms  materialized %8.1f ms  %5d SWAR / %d scalar descents  identical=%v\n",
				r.Query, r.KernelMillis, r.ScalarMillis, r.MaterializedMillis, r.KernelDescents, r.ScalarDescents, r.Identical)
		}
		fmt.Println()
		snap.Kernel = rows
	}
	if *benchjson != "" {
		if err := appendSnapshot(*benchjson, snap); err != nil {
			fatal(err)
		}
		fmt.Printf("appended perf snapshot to %s\n", *benchjson)
	}
}

func printFig3(rows []bench.Fig3Row) {
	bySize := map[int][]bench.Fig3Row{}
	var sizes []int
	for _, r := range rows {
		if len(bySize[r.Size]) == 0 {
			sizes = append(sizes, r.Size)
		}
		bySize[r.Size] = append(bySize[r.Size], r)
	}
	fmt.Printf("  %-14s", "structure")
	for _, s := range sizes {
		fmt.Printf(" %10s", humanCount(s))
	}
	fmt.Println()
	for _, structure := range bench.Fig3Structures {
		fmt.Printf("  %-14s", structure)
		for _, s := range sizes {
			for _, r := range bySize[s] {
				if r.Structure == structure {
					fmt.Printf(" %10.1f", r.NsPerKey)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

func printQueryTimes(rows []bench.QueryTime) {
	for _, r := range rows {
		label := r.Engine
		if r.Config != "" {
			label += " " + r.Config
		}
		fmt.Printf("  Q%-4s %-48s %10.1f ms  (%d rows)\n", r.Query, label, r.Millis, r.Rows)
	}
	fmt.Println()
}

func humanCount(n int) string {
	switch {
	case n%1000000 == 0:
		return fmt.Sprintf("%dM", n/1000000)
	case n%1000 == 0:
		return fmt.Sprintf("%dK", n/1000)
	}
	return strconv.Itoa(n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qpptbench:", err)
	os.Exit(1)
}
