// Command ssbgen generates Star Schema Benchmark data and writes it as
// CSV files (one per table), for inspection or for loading into other
// systems to cross-check results.
//
// Usage:
//
//	ssbgen -sf 0.1 -seed 42 -out ./ssb-data [-tables lineorder,date,...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qppt/internal/catalog"
	"qppt/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.1, "scale factor (lineorder ≈ 6,000,000 × SF rows)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "ssb-data", "output directory")
	tables := flag.String("tables", "", "comma-separated table subset (default: all)")
	flag.Parse()

	data := ssb.Generate(ssb.GenConfig{SF: *sf, Seed: *seed})
	want := map[string]bool{}
	if *tables != "" {
		for _, t := range strings.Split(*tables, ",") {
			want[strings.TrimSpace(t)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for name, cols := range data.Tables {
		if len(want) > 0 && !want[name] {
			continue
		}
		if err := writeCSV(filepath.Join(*out, name+".csv"), cols); err != nil {
			fatal(err)
		}
	}
}

func writeCSV(path string, cols []catalog.ColumnData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	n := 0
	for i, c := range cols {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c.Name)
		if c.Strs != nil {
			n = len(c.Strs)
		} else {
			n = len(c.Ints)
		}
	}
	w.WriteByte('\n')
	for r := 0; r < n; r++ {
		for i, c := range cols {
			if i > 0 {
				w.WriteByte(',')
			}
			if c.Strs != nil {
				w.WriteString(c.Strs[r])
			} else {
				fmt.Fprintf(w, "%d", c.Ints[r])
			}
		}
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, n)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssbgen:", err)
	os.Exit(1)
}
