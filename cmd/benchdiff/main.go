// Command benchdiff compares two `go test -bench` output files and exits
// non-zero when any benchmark regresses beyond a threshold.
//
// Usage:
//
//	benchdiff -old baseline.txt -new current.txt [-threshold 15]
//	          [-allocs-threshold 15] [-min-samples 3]
//
// Both files hold standard Go benchmark output (any -count). For every
// benchmark present in both files, the *median* ns/op is compared — and,
// when both sides were run with -benchmem, the median allocs/op too; a
// metric fails when the new median is more than its threshold percent
// worse AND the regression is significant: both sides have at least
// -min-samples samples (run with -count 6) and the sample ranges do not
// overlap (every new run worse than every old run — a non-parametric
// separation test that keeps shared-runner noise, which routinely swings
// individual medians past 10%, from flaking the gate). Allocation counts
// are far less noisy than wall time, but the same rule keeps the two
// gates uniform. Suspicious but overlapping regressions are marked '?'
// and reported without failing. Benchmarks present on only one side are
// reported but never fail the comparison, so adding or removing
// benchmarks does not break the CI gate.
//
// benchdiff is the deterministic gate of the benchmark-regression CI job;
// benchstat (golang.org/x/perf) renders the human-readable report next to
// it when installed, but the gate must not depend on an external tool or
// its output format.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g.
// "BenchmarkX/sub-8   120  9123456 ns/op  12 B/op  3 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9.]+) allocs/op)?`)

// loadAll returns per-benchmark ns/op samples and (when -benchmem output
// is present) allocs/op samples.
func loadAll(path string) (ns, allocs map[string][]float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	ns = map[string][]float64{}
	allocs = map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		ns[m[1]] = append(ns[m[1]], v)
		if m[3] != "" {
			if a, err := strconv.ParseFloat(m[3], 64); err == nil {
				allocs[m[1]] = append(allocs[m[1]], a)
			}
		}
	}
	return ns, allocs, sc.Err()
}

// load keeps the ns/op-only view (tests use it).
func load(path string) (map[string][]float64, error) {
	ns, _, err := loadAll(path)
	return ns, err
}

func median(xs []float64) float64 {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output")
	newPath := flag.String("new", "", "current benchmark output")
	threshold := flag.Float64("threshold", 15, "fail on median ns/op regressions above this percentage")
	allocsThreshold := flag.Float64("allocs-threshold", 15, "fail on median allocs/op regressions above this percentage (needs -benchmem output on both sides)")
	minSamples := flag.Int("min-samples", 3, "samples required on both sides before a regression can fail the gate")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldNs, oldAllocs, err := loadAll(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newNs, newAllocs, err := loadAll(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	nsFailed, nsCompared := compareMetric("ns/op", oldNs, newNs, *threshold, *minSamples, true)
	allocFailed, _ := compareMetric("allocs/op", oldAllocs, newAllocs, *allocsThreshold, *minSamples, false)
	if nsCompared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks — wrong files?")
		os.Exit(2)
	}
	failed := nsFailed + allocFailed
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond their threshold\n", failed)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within thresholds\n", nsCompared)
}

// compareMetric renders one metric's old-vs-new table and returns how
// many benchmarks failed the gate and how many were compared. reportOnly
// controls whether one-sided benchmarks are listed (once is enough).
func compareMetric(unit string, oldS, newS map[string][]float64, threshold float64, minSamples int, reportSingles bool) (failed, compared int) {
	names := make([]string, 0, len(oldS))
	for name := range oldS {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Printf("--- %s (median, >%.0f%% separated fails)\n", unit, threshold)
	}
	for _, name := range names {
		ns, ok := newS[name]
		if !ok {
			if reportSingles {
				fmt.Printf("  %-60s removed (baseline only)\n", name)
			}
			continue
		}
		os_, nsM := median(oldS[name]), median(ns)
		var delta float64
		switch {
		case os_ != 0:
			delta = (nsM - os_) / os_ * 100
		case nsM != 0:
			// 0 → nonzero (e.g. an allocation-free kernel starts
			// allocating): infinitely worse, beyond any threshold.
			delta = math.Inf(1)
		}
		mark := " "
		if delta > threshold {
			enough := len(oldS[name]) >= minSamples && len(ns) >= minSamples
			if enough && minOf(ns) > maxOf(oldS[name]) {
				mark = "✗" // separated distributions: a real regression
				failed++
			} else {
				mark = "?" // too few samples or overlapping ranges: noise
			}
		}
		compared++
		fmt.Printf("%s %-60s %12.0f → %12.0f %s  %+6.1f%%  (n=%d/%d)\n",
			mark, name, os_, nsM, unit, delta, len(oldS[name]), len(ns))
	}
	if reportSingles {
		for name := range newS {
			if _, ok := oldS[name]; !ok {
				fmt.Printf("  %-60s new (no baseline)\n", name)
			}
		}
	}
	return failed, compared
}
