// Command benchdiff compares two `go test -bench` output files and exits
// non-zero when any benchmark regresses beyond a threshold.
//
// Usage:
//
//	benchdiff -old baseline.txt -new current.txt [-threshold 15] [-min-samples 3]
//
// Both files hold standard Go benchmark output (any -count). For every
// benchmark present in both files, the *median* ns/op is compared; a
// benchmark fails when the new median is more than -threshold percent
// slower AND the regression is significant: both sides have at least
// -min-samples samples (run with -count 6) and the sample ranges do not
// overlap (every new run slower than every old run — a non-parametric
// separation test that keeps shared-runner noise, which routinely swings
// individual medians past 10%, from flaking the gate). Suspicious but
// overlapping regressions are marked '?' and reported without failing.
// Benchmarks present on only one side are reported but never fail the
// comparison, so adding or removing benchmarks does not break the CI
// gate.
//
// benchdiff is the deterministic gate of the benchmark-regression CI job;
// benchstat (golang.org/x/perf) renders the human-readable report next to
// it when installed, but the gate must not depend on an external tool or
// its output format.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g. "BenchmarkX/sub-8   120  9123456 ns/op  12 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func load(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	return samples, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output")
	newPath := flag.String("new", "", "current benchmark output")
	threshold := flag.Float64("threshold", 15, "fail on median ns/op regressions above this percentage")
	minSamples := flag.Int("min-samples", 3, "samples required on both sides before a regression can fail the gate")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldS, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newS, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldS))
	for name := range oldS {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	compared := 0
	for _, name := range names {
		ns, ok := newS[name]
		if !ok {
			fmt.Printf("  %-60s removed (baseline only)\n", name)
			continue
		}
		os_, nsM := median(oldS[name]), median(ns)
		delta := (nsM - os_) / os_ * 100
		mark := " "
		if delta > *threshold {
			enough := len(oldS[name]) >= *minSamples && len(ns) >= *minSamples
			if enough && minOf(ns) > maxOf(oldS[name]) {
				mark = "✗" // separated distributions: a real regression
				failed++
			} else {
				mark = "?" // too few samples or overlapping ranges: noise
			}
		}
		compared++
		fmt.Printf("%s %-60s %12.0f → %12.0f ns/op  %+6.1f%%  (n=%d/%d)\n",
			mark, name, os_, nsM, delta, len(oldS[name]), len(ns))
	}
	for name := range newS {
		if _, ok := oldS[name]; !ok {
			fmt.Printf("  %-60s new (no baseline)\n", name)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no common benchmarks — wrong files?")
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%%\n", failed, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of baseline\n", compared, *threshold)
}
