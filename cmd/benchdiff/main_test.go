package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadParsesBenchOutput(t *testing.T) {
	dir := t.TempDir()
	p := writeBench(t, dir, "b.txt", `
goos: linux
BenchmarkFoo/sub-8   	     120	   9123456 ns/op	      12 B/op	       0 allocs/op
BenchmarkFoo/sub-8   	     121	   9200000 ns/op
BenchmarkBar 	       5	  97436448 ns/op	310678178 B/op
PASS
`)
	s, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s["BenchmarkFoo/sub"]); got != 2 {
		t.Fatalf("BenchmarkFoo/sub samples = %d, want 2 (GOMAXPROCS suffix must strip)", got)
	}
	if got := len(s["BenchmarkBar"]); got != 1 {
		t.Fatalf("BenchmarkBar samples = %d, want 1 (no suffix)", got)
	}
	if m := median(s["BenchmarkFoo/sub"]); m != (9123456+9200000)/2.0 {
		t.Fatalf("median = %f", m)
	}
}

func TestSeparationRule(t *testing.T) {
	// The gate logic in main(): fail only when the median regresses past
	// the threshold AND the ranges separate. Recreate the decision here.
	decide := func(old, new []float64, threshold float64, minSamples int) string {
		delta := (median(new) - median(old)) / median(old) * 100
		if delta <= threshold {
			return "pass"
		}
		if len(old) >= minSamples && len(new) >= minSamples && minOf(new) > maxOf(old) {
			return "fail"
		}
		return "suspect"
	}
	// Clean 30% regression, tight samples: fails.
	if got := decide([]float64{100, 101, 102}, []float64{130, 131, 132}, 15, 3); got != "fail" {
		t.Fatalf("separated regression = %s, want fail", got)
	}
	// Median past threshold but ranges overlap (noisy runner): suspect only.
	if got := decide([]float64{100, 140, 100}, []float64{120, 119, 141}, 15, 3); got != "suspect" {
		t.Fatalf("overlapping regression = %s, want suspect", got)
	}
	// Too few samples: suspect only.
	if got := decide([]float64{100}, []float64{200}, 15, 3); got != "suspect" {
		t.Fatalf("undersampled regression = %s, want suspect", got)
	}
	// Within threshold: passes.
	if got := decide([]float64{100, 101, 99}, []float64{110, 111, 109}, 15, 3); got != "pass" {
		t.Fatalf("small delta = %s, want pass", got)
	}
}

func TestLoadAllParsesAllocs(t *testing.T) {
	dir := t.TempDir()
	p := writeBench(t, dir, "a.txt", `
BenchmarkFoo-8   	     120	   9123456 ns/op	      12 B/op	       7 allocs/op
BenchmarkFoo-8   	     121	   9200000 ns/op	      12 B/op	       9 allocs/op
BenchmarkBar-8   	       5	  97436448 ns/op
PASS
`)
	ns, allocs, err := loadAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ns["BenchmarkFoo"]); got != 2 {
		t.Fatalf("ns samples = %d", got)
	}
	if got := allocs["BenchmarkFoo"]; len(got) != 2 || median(got) != 8 {
		t.Fatalf("allocs samples = %v", got)
	}
	if _, ok := allocs["BenchmarkBar"]; ok {
		t.Fatal("allocs recorded for a benchmark without -benchmem output")
	}
}

// The allocs gate must fail a separated allocation regression even when
// ns/op stays flat.
func TestCompareMetricAllocsGate(t *testing.T) {
	oldA := map[string][]float64{"BenchmarkX": {10, 10, 10}}
	newA := map[string][]float64{"BenchmarkX": {20, 21, 20}}
	failed, compared := compareMetric("allocs/op", oldA, newA, 15, 3, false)
	if failed != 1 || compared != 1 {
		t.Fatalf("failed=%d compared=%d, want 1/1", failed, compared)
	}
	// Overlapping samples stay suspect-only.
	failed, _ = compareMetric("allocs/op", map[string][]float64{"BenchmarkX": {10, 25, 10}},
		map[string][]float64{"BenchmarkX": {20, 21, 11}}, 15, 3, false)
	if failed != 0 {
		t.Fatalf("overlapping allocs regression failed the gate")
	}
}
