// Command qpptsql is an interactive SQL shell — and, with -listen or
// -serve, a query server — over an in-memory SSB instance, executing
// queries through one long-lived qppt.Engine.
//
// Usage:
//
//	qpptsql [-sf 0.05] [-stats] [-no-select-join] [-buffer 512]
//	        [-workers N] [-morsels M] [-membudget 256MiB]
//	        [-norecycle] [-recyclecap 256MiB] [-mmapthaw]
//	        [-max-plans N] [-queue-depth D] [-stmtcache C]
//	        [-listen :5477] [-serve :8080]
//
// One Engine lives for the whole process: every statement shares its
// worker pool, its session chunk pool (on by default — dropped
// intermediates' chunks stay warm *across* queries; -norecycle turns it
// off, -recyclecap bounds it), and its spill budget
// (-membudget spans concurrent statements; cold intermediates spill to
// temp files and restore on access — results are identical, \stats and
// \engine show the traffic). -mmapthaw restores spilled intermediates
// zero-copy by adopting privately mapped spill-file pages. Byte flags
// accept plain bytes or K/M/G suffixes (powers of 1024).
//
// Meta commands inside the shell:
//
//	\q            quit
//	\ssb <id>     run benchmark query <id> (for example: \ssb 2.3)
//	\tables       list tables and row counts
//	\stats        toggle per-operator statistics
//	\engine       print the engine's cross-query resource counters
//
// Statements may span lines and end with a semicolon.
//
// -listen serves the QPPT binary wire protocol (see internal/wire):
// per-connection sessions with prepared-statement caches, streamed
// row-batch results, out-of-band cancellation, and typed error classes.
// -max-plans/-queue-depth put the engine's admission gate in front of
// every query so overload answers ErrOverloaded instead of piling up.
//
// -serve starts the HTTP adapter — a thin layer over the same wire
// server (each request is one in-process wire connection): GET or POST
// /query with the statement in the q parameter (or the request body)
// returns decoded rows as JSON; /stats returns the engine counters.
// Both flags may be combined; either replaces the shell. This is the
// serving mode the ROADMAP's north star asks for: one warm engine,
// many client connections.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"qppt"
	"qppt/internal/cliflags"
	"qppt/internal/ssb"
	"qppt/internal/wire"
	"qppt/internal/wire/httpd"
)

func main() {
	sf := flag.Float64("sf", 0.05, "SSB scale factor")
	stats := flag.Bool("stats", false, "print per-operator statistics")
	noSJ := flag.Bool("no-select-join", false, "disable composed select-join operators")
	srvFlags := cliflags.RegisterServe(flag.CommandLine)
	exec := cliflags.Register(flag.CommandLine)
	flag.Parse()
	exec.ApplyRuntime()

	cfg, err := exec.EngineConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpptsql:", err)
		os.Exit(2)
	}

	fmt.Printf("loading SSB at SF=%g...\n", *sf)
	ds := ssb.MustLoad(ssb.GenConfig{SF: *sf, Seed: 42})
	fmt.Printf("ready: lineorder=%d customer=%d supplier=%d part=%d date=%d rows\n",
		ds.Lineorder.Rows(), ds.Customer.Rows(), ds.Supplier.Rows(), ds.Part.Rows(), ds.Date.Rows())

	eng, err := qppt.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpptsql:", err)
		os.Exit(2)
	}
	defer eng.Close()

	if srvFlags.Serving() {
		if err := serveWire(srvFlags, eng, ds, *noSJ); err != nil {
			fmt.Fprintln(os.Stderr, "qpptsql:", err)
			os.Exit(1)
		}
		return
	}

	sess := eng.Session(ds.Cat)
	fmt.Println(`type SQL ending with ';', \q to quit, \ssb <id> for benchmark queries, \engine for pool stats`)
	repl(sess, ds, *stats, *noSJ)
}

// serveWire runs the serving tier: the wire-protocol listener and/or the
// HTTP adapter, both over one wire.Server on the shared engine. It
// returns when either listener fails (ErrServerClosed is clean).
func serveWire(addrs *cliflags.Serve, eng *qppt.Engine, ds *ssb.Dataset, noSJ bool) error {
	srv := wire.NewServer(eng, ds.Cat, queryOptions(false, noSJ)...)
	defer srv.Close()
	errc := make(chan error, 2)
	if addrs.Listen != "" {
		fmt.Printf("serving qppt wire protocol on %s\n", addrs.Listen)
		go func() { errc <- srv.ListenAndServe(addrs.Listen) }()
	}
	if addrs.HTTP != "" {
		fmt.Printf("serving HTTP queries on %s (POST /query, GET /stats)\n", addrs.HTTP)
		go func() { errc <- http.ListenAndServe(addrs.HTTP, httpd.New(srv)) }()
	}
	if err := <-errc; err != nil && !errors.Is(err, wire.ErrServerClosed) {
		return err
	}
	return nil
}

// repl drives the interactive shell over one engine session.
func repl(sess *qppt.Session, ds *ssb.Dataset, stats, noSJ bool) {
	showStats := stats
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("qppt> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case buf.Len() == 0 && line == `\q`:
			return
		case buf.Len() == 0 && line == `\tables`:
			for _, t := range []string{"lineorder", "date", "customer", "supplier", "part"} {
				fmt.Printf("  %-10s %9d rows\n", t, ds.Cat.Table(t).Rows())
			}
			prompt()
			continue
		case buf.Len() == 0 && line == `\stats`:
			showStats = !showStats
			fmt.Printf("statistics %v\n", map[bool]string{true: "on", false: "off"}[showStats])
			prompt()
			continue
		case buf.Len() == 0 && line == `\engine`:
			fmt.Print(sess.Engine().Stats())
			prompt()
			continue
		case buf.Len() == 0 && strings.HasPrefix(line, `\ssb `):
			qid := strings.TrimSpace(strings.TrimPrefix(line, `\ssb `))
			text, ok := ssb.SQLTexts[qid]
			if !ok {
				fmt.Printf("unknown SSB query %q (valid: %s)\n", qid, strings.Join(ssb.QueryIDs, " "))
				prompt()
				continue
			}
			fmt.Println(text)
			run(sess, text, showStats, noSJ)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte(' ')
		if strings.HasSuffix(line, ";") {
			run(sess, buf.String(), showStats, noSJ)
			buf.Reset()
		}
		prompt()
	}
}

// queryOptions assembles the per-query options from the shell state.
func queryOptions(stats, noSJ bool) []qppt.QueryOption {
	var opts []qppt.QueryOption
	if stats {
		opts = append(opts, qppt.WithStats())
	}
	if noSJ {
		opts = append(opts, qppt.WithoutSelectJoin())
	}
	return opts
}

func run(sess *qppt.Session, text string, stats, noSJ bool) {
	rows, planStats, err := sess.Query(context.Background(), text, queryOptions(stats, noSJ)...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(rows.Attrs, " | "))
	for i := range rows.Rows {
		if i == 40 {
			fmt.Printf("... %d more rows\n", len(rows.Rows)-40)
			break
		}
		cells := make([]string, len(rows.Attrs))
		for c := range rows.Attrs {
			cells[c] = rows.Decode(i, c)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(rows.Rows))
	if stats && planStats != nil {
		fmt.Print(planStats)
	}
}
