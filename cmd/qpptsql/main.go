// Command qpptsql is an interactive SQL shell over an in-memory SSB
// instance, executing queries through the QPPT engine.
//
// Usage:
//
//	qpptsql [-sf 0.05] [-stats] [-no-select-join] [-buffer 512]
//	        [-workers N] [-morsels M] [-membudget 256MiB]
//	        [-recycle] [-mmapthaw]
//
// -membudget caps the resident bytes of each plan's intermediate indexes;
// cold intermediates spill to temp files and are restored on next access
// (index spilling — results are identical, \stats shows the traffic).
// Accepts plain bytes or K/M/G suffixes (powers of 1024). -recycle pools
// dropped intermediates' chunks for reuse within each plan; -mmapthaw
// restores spilled intermediates zero-copy by adopting privately mapped
// spill-file pages. Both are pure storage decisions — results are
// identical, \stats shows the savings.
//
// Meta commands inside the shell:
//
//	\q            quit
//	\ssb <id>     run benchmark query <id> (for example: \ssb 2.3)
//	\tables       list tables and row counts
//	\stats        toggle per-operator statistics
//
// Statements may span lines and end with a semicolon.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"qppt/internal/core"
	"qppt/internal/spill"
	"qppt/internal/sql"
	"qppt/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.05, "SSB scale factor")
	stats := flag.Bool("stats", false, "print per-operator statistics")
	noSJ := flag.Bool("no-select-join", false, "disable composed select-join operators")
	buffer := flag.Int("buffer", 512, "joinbuffer/selectionbuffer size (1 disables batching)")
	workers := flag.Int("workers", 1, "shared worker pool size for morsel-driven parallel execution (1 = serial)")
	morsels := flag.Int("morsels", 0, "morsels per worker (0 = default fan-out)")
	membudget := flag.String("membudget", "", "intermediate-index memory budget (e.g. 256MiB); empty = unlimited, no spilling")
	recycle := flag.Bool("recycle", false, "recycle dropped intermediates' chunks within each plan")
	mmapthaw := flag.Bool("mmapthaw", false, "restore spilled intermediates via zero-copy mmap instead of copying")
	flag.Parse()

	var budget int64
	if *membudget != "" {
		b, err := spill.ParseBytes(*membudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpptsql:", err)
			os.Exit(2)
		}
		budget = b
	}

	fmt.Printf("loading SSB at SF=%g...\n", *sf)
	ds := ssb.MustLoad(ssb.GenConfig{SF: *sf, Seed: 42})
	fmt.Printf("ready: lineorder=%d customer=%d supplier=%d part=%d date=%d rows\n",
		ds.Lineorder.Rows(), ds.Customer.Rows(), ds.Supplier.Rows(), ds.Part.Rows(), ds.Date.Rows())
	fmt.Println(`type SQL ending with ';', or \q to quit, \ssb <id> for benchmark queries`)

	planner := sql.NewPlanner(ds.Cat)
	showStats := *stats
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("qppt> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case buf.Len() == 0 && line == `\q`:
			return
		case buf.Len() == 0 && line == `\tables`:
			for _, t := range []string{"lineorder", "date", "customer", "supplier", "part"} {
				fmt.Printf("  %-10s %9d rows\n", t, ds.Cat.Table(t).Rows())
			}
			prompt()
			continue
		case buf.Len() == 0 && line == `\stats`:
			showStats = !showStats
			fmt.Printf("statistics %v\n", map[bool]string{true: "on", false: "off"}[showStats])
			prompt()
			continue
		case buf.Len() == 0 && strings.HasPrefix(line, `\ssb `):
			qid := strings.TrimSpace(strings.TrimPrefix(line, `\ssb `))
			text, ok := ssb.SQLTexts[qid]
			if !ok {
				fmt.Printf("unknown SSB query %q (valid: %s)\n", qid, strings.Join(ssb.QueryIDs, " "))
				prompt()
				continue
			}
			fmt.Println(text)
			run(planner, text, showStats, *noSJ, exec(*buffer, *workers, *morsels, budget, *recycle, *mmapthaw))
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte(' ')
		if strings.HasSuffix(line, ";") {
			run(planner, buf.String(), showStats, *noSJ, exec(*buffer, *workers, *morsels, budget, *recycle, *mmapthaw))
			buf.Reset()
		}
		prompt()
	}
}

// exec assembles the execution options from the shell flags.
func exec(buffer, workers, morsels int, membudget int64, recycle, mmapthaw bool) core.Options {
	return core.Options{
		BufferSize: buffer, Workers: workers, MorselsPerWorker: morsels,
		MemBudget: membudget, Recycle: recycle, MmapThaw: mmapthaw,
	}
}

func run(planner *sql.Planner, text string, stats, noSJ bool, exec core.Options) {
	exec.CollectStats = stats
	stmt, err := planner.PlanSQL(text, sql.Options{
		UseSelectJoin: !noSJ,
		Exec:          exec,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rows, planStats, err := stmt.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(rows.Attrs, " | "))
	for i := range rows.Rows {
		if i == 40 {
			fmt.Printf("... %d more rows\n", len(rows.Rows)-40)
			break
		}
		cells := make([]string, len(rows.Attrs))
		for c := range rows.Attrs {
			cells[c] = rows.Decode(i, c)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(rows.Rows))
	if stats && planStats != nil {
		fmt.Print(planStats)
	}
}
