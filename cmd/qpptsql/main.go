// Command qpptsql is an interactive SQL shell — and, with -serve, a tiny
// HTTP query server — over an in-memory SSB instance, executing queries
// through one long-lived qppt.Engine.
//
// Usage:
//
//	qpptsql [-sf 0.05] [-stats] [-no-select-join] [-buffer 512]
//	        [-workers N] [-morsels M] [-membudget 256MiB]
//	        [-norecycle] [-recyclecap 256MiB] [-mmapthaw]
//	        [-serve :8080]
//
// One Engine lives for the whole process: every statement shares its
// worker pool, its session chunk pool (on by default — dropped
// intermediates' chunks stay warm *across* queries; -norecycle turns it
// off, -recyclecap bounds it), and its spill budget
// (-membudget spans concurrent statements; cold intermediates spill to
// temp files and restore on access — results are identical, \stats and
// \engine show the traffic). -mmapthaw restores spilled intermediates
// zero-copy by adopting privately mapped spill-file pages. Byte flags
// accept plain bytes or K/M/G suffixes (powers of 1024).
//
// Meta commands inside the shell:
//
//	\q            quit
//	\ssb <id>     run benchmark query <id> (for example: \ssb 2.3)
//	\tables       list tables and row counts
//	\stats        toggle per-operator statistics
//	\engine       print the engine's cross-query resource counters
//
// Statements may span lines and end with a semicolon.
//
// -serve starts an HTTP endpoint instead of the shell: GET or POST
// /query with the statement in the q parameter (or the request body)
// returns decoded rows as JSON. All requests share the one Engine, so
// steady traffic runs against warm chunk pools — the serving mode the
// ROADMAP's north star asks for, in miniature.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"qppt"
	"qppt/internal/cliflags"
	"qppt/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.05, "SSB scale factor")
	stats := flag.Bool("stats", false, "print per-operator statistics")
	noSJ := flag.Bool("no-select-join", false, "disable composed select-join operators")
	serve := flag.String("serve", "", "serve HTTP queries on this address (e.g. :8080) instead of the interactive shell")
	exec := cliflags.Register(flag.CommandLine)
	flag.Parse()
	exec.ApplyRuntime()

	cfg, err := exec.EngineConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpptsql:", err)
		os.Exit(2)
	}

	fmt.Printf("loading SSB at SF=%g...\n", *sf)
	ds := ssb.MustLoad(ssb.GenConfig{SF: *sf, Seed: 42})
	fmt.Printf("ready: lineorder=%d customer=%d supplier=%d part=%d date=%d rows\n",
		ds.Lineorder.Rows(), ds.Customer.Rows(), ds.Supplier.Rows(), ds.Part.Rows(), ds.Date.Rows())

	eng, err := qppt.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpptsql:", err)
		os.Exit(2)
	}
	defer eng.Close()
	sess := eng.Session(ds.Cat)

	if *serve != "" {
		if err := serveHTTP(*serve, sess, *noSJ); err != nil {
			fmt.Fprintln(os.Stderr, "qpptsql:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println(`type SQL ending with ';', \q to quit, \ssb <id> for benchmark queries, \engine for pool stats`)
	repl(sess, ds, *stats, *noSJ)
}

// repl drives the interactive shell over one engine session.
func repl(sess *qppt.Session, ds *ssb.Dataset, stats, noSJ bool) {
	showStats := stats
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("qppt> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case buf.Len() == 0 && line == `\q`:
			return
		case buf.Len() == 0 && line == `\tables`:
			for _, t := range []string{"lineorder", "date", "customer", "supplier", "part"} {
				fmt.Printf("  %-10s %9d rows\n", t, ds.Cat.Table(t).Rows())
			}
			prompt()
			continue
		case buf.Len() == 0 && line == `\stats`:
			showStats = !showStats
			fmt.Printf("statistics %v\n", map[bool]string{true: "on", false: "off"}[showStats])
			prompt()
			continue
		case buf.Len() == 0 && line == `\engine`:
			fmt.Print(sess.Engine().Stats())
			prompt()
			continue
		case buf.Len() == 0 && strings.HasPrefix(line, `\ssb `):
			qid := strings.TrimSpace(strings.TrimPrefix(line, `\ssb `))
			text, ok := ssb.SQLTexts[qid]
			if !ok {
				fmt.Printf("unknown SSB query %q (valid: %s)\n", qid, strings.Join(ssb.QueryIDs, " "))
				prompt()
				continue
			}
			fmt.Println(text)
			run(sess, text, showStats, noSJ)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte(' ')
		if strings.HasSuffix(line, ";") {
			run(sess, buf.String(), showStats, noSJ)
			buf.Reset()
		}
		prompt()
	}
}

// queryOptions assembles the per-query options from the shell state.
func queryOptions(stats, noSJ bool) []qppt.QueryOption {
	var opts []qppt.QueryOption
	if stats {
		opts = append(opts, qppt.WithStats())
	}
	if noSJ {
		opts = append(opts, qppt.WithoutSelectJoin())
	}
	return opts
}

func run(sess *qppt.Session, text string, stats, noSJ bool) {
	rows, planStats, err := sess.Query(context.Background(), text, queryOptions(stats, noSJ)...)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(rows.Attrs, " | "))
	for i := range rows.Rows {
		if i == 40 {
			fmt.Printf("... %d more rows\n", len(rows.Rows)-40)
			break
		}
		cells := make([]string, len(rows.Attrs))
		for c := range rows.Attrs {
			cells[c] = rows.Decode(i, c)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(rows.Rows))
	if stats && planStats != nil {
		fmt.Print(planStats)
	}
}

// serveHTTP runs the query server: every request executes on the shared
// engine session, with the request context cancelling the plan when the
// client disconnects.
func serveHTTP(addr string, sess *qppt.Session, noSJ bool) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		text := r.FormValue("q")
		if text == "" {
			body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			text = strings.TrimSpace(string(body))
		}
		if text == "" {
			http.Error(w, "missing query (q parameter or request body)", http.StatusBadRequest)
			return
		}
		t0 := time.Now()
		// Prepare and Run separately so failures classify honestly: a bad
		// statement is the client's fault (400), an execution failure —
		// spill I/O — is the server's (500), a closed engine is the server
		// shutting down (503), and a client that hung up mid-query is
		// neither (499).
		status := func(err error, fallback int) int {
			switch {
			case r.Context().Err() != nil:
				return 499 // client closed request
			case errors.Is(err, qppt.ErrEngineClosed):
				return http.StatusServiceUnavailable
			}
			return fallback
		}
		stmt, err := sess.Prepare(r.Context(), text, queryOptions(false, noSJ)...)
		if err != nil {
			http.Error(w, err.Error(), status(err, http.StatusBadRequest))
			return
		}
		rows, _, err := stmt.Run(r.Context())
		if err != nil {
			http.Error(w, err.Error(), status(err, http.StatusInternalServerError))
			return
		}
		decoded := make([][]string, len(rows.Rows))
		for i := range rows.Rows {
			cells := make([]string, len(rows.Attrs))
			for c := range rows.Attrs {
				cells[c] = rows.Decode(i, c)
			}
			decoded[i] = cells
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"attrs":   rows.Attrs,
			"rows":    decoded,
			"elapsed": time.Since(t0).String(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		st := sess.Engine().Stats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	fmt.Printf("serving queries on %s (POST /query, GET /stats)\n", addr)
	return http.ListenAndServe(addr, mux)
}
