// Command qpptvet runs QPPT's domain invariant analyzers (pinbalance,
// refescape, ctxpoll, lockguard, closetrail — see internal/lint).
//
// Standalone mode loads packages with the go tool and prints findings:
//
//	qpptvet ./...
//	qpptvet -tests ./internal/core/ ./internal/catalog/
//
// Vet-tool mode speaks the go command's unitchecker protocol, so the
// same binary plugs into the build cache and per-package scheduling:
//
//	go build -o bin/qpptvet ./cmd/qpptvet
//	go vet -vettool=$(pwd)/bin/qpptvet ./...
//
// In both modes findings print as file:line:col: [analyzer] message and
// a non-zero exit reports that findings exist. Suppress a finding with
// an auditable comment on the flagged line or the line above:
//
//	//qpptvet:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qppt/internal/lint"
	"qppt/internal/lint/qlint"
)

func main() {
	args := os.Args[1:]
	// The go command's vettool handshake probes capabilities before any
	// package is vetted: -V=full identifies the tool for the build cache,
	// -flags asks which analyzer flags it accepts (none).
	for _, a := range args {
		switch strings.TrimLeft(a, "-") {
		case "V=full":
			// The go command parses this line into the tool's build ID;
			// the first field must match the executable name and a
			// "devel" version would require a buildID= field, so report a
			// plain version.
			fmt.Printf("%s version 1\n", filepath.Base(os.Args[0]))
			return
		case "flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetTool(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone loads the requested packages (default ./...) with the go
// tool and runs the full suite. Exit 1 means findings, 2 means the run
// itself failed.
func standalone(args []string) int {
	fs := flag.NewFlagSet("qpptvet", flag.ExitOnError)
	tests := fs.Bool("tests", false, "also analyze in-package _test.go files")
	dir := fs.String("C", "", "change to this directory before loading packages")
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := qlint.Load(qlint.LoadOptions{Dir: *dir, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpptvet:", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := qlint.Run(lint.Suite(), pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpptvet:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d.String())
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "qpptvet: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// vetTool handles one unitchecker-protocol invocation: the go command
// passes a vet.cfg describing a single package. Dependency packages
// arrive with VetxOnly set and only need their output file touched;
// target packages are type-checked from source and analyzed.
// Diagnostics go to stderr and exit status 2, which go vet relays.
func vetTool(cfgPath string) int {
	cfg, err := qlint.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qpptvet:", err)
		return 1
	}
	if !cfg.VetxOnly {
		pkg, err := qlint.LoadVetPackage(cfg)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fmt.Fprintln(os.Stderr, "qpptvet:", err)
			return 1
		}
		diags, err := qlint.Run(lint.Suite(), pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qpptvet:", err)
			return 1
		}
		if len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
			}
			writeVetx(cfg)
			return 2
		}
	}
	return writeVetx(cfg)
}

// writeVetx creates the (empty — qpptvet exports no facts) output file
// the go command expects for its cache.
func writeVetx(cfg *qlint.VetConfig) int {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "qpptvet:", err)
			return 1
		}
	}
	return 0
}
