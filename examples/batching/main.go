// batching demonstrates the two substrate-level mechanisms of Sections
// 2.3 and 2.4 directly on the index structures: level-synchronous batch
// processing (Algorithm 1) and sequential duplicate segments (Figure 4).
//
// Run with: go run ./examples/batching [-n 4000000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"qppt/internal/duplist"
	"qppt/internal/kisstree"
)

var sink uint64

func main() {
	n := flag.Int("n", 4_000_000, "number of keys")
	flag.Parse()

	// ── Batch processing (Section 2.3) ──
	keys := make([]uint64, *n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(*n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	tree := kisstree.MustNew(kisstree.Config{})
	for _, k := range keys {
		tree.Insert(k, nil)
	}
	probes := append([]uint64{}, keys...)
	rng.Shuffle(*n, func(i, j int) { probes[i], probes[j] = probes[j], probes[i] })

	t0 := time.Now()
	for _, k := range probes {
		if lf := tree.Lookup(k); lf != nil {
			sink += lf.Key
		}
	}
	scalar := time.Since(t0)

	t0 = time.Now()
	const batch = 512
	for off := 0; off < len(probes); off += batch {
		end := min(off+batch, len(probes))
		tree.LookupBatch(probes[off:end], func(i int, lf *kisstree.Leaf) {
			if lf != nil {
				sink += lf.Key
			}
		})
	}
	batched := time.Since(t0)

	fmt.Printf("KISS-Tree, %d keys (memory-bound):\n", *n)
	fmt.Printf("  scalar lookups:  %6.1f ns/key\n", float64(scalar.Nanoseconds())/float64(*n))
	fmt.Printf("  batched lookups: %6.1f ns/key  (batch=%d, level-synchronous)\n\n",
		float64(batched.Nanoseconds())/float64(*n), batch)

	// ── Duplicate handling (Section 2.4, Figure 4) ──
	const dups = 500_000
	seg := duplist.New(2)
	lnk := duplist.NewLinked(2)
	row := []uint64{0, 0}
	for i := 0; i < dups; i++ {
		row[0] = uint64(i)
		seg.Append(row)
		lnk.Append(row)
	}
	t0 = time.Now()
	seg.Scan(func(r []uint64) bool { sink += r[0]; return true })
	segScan := time.Since(t0)
	t0 = time.Now()
	lnk.Scan(func(r []uint64) bool { sink += r[0]; return true })
	lnkScan := time.Since(t0)

	fmt.Printf("duplicate scan, %d rows of 16 B:\n", dups)
	fmt.Printf("  doubling segments (Fig. 4): %6.2f ns/row, %5.2f MB, %d segments\n",
		float64(segScan.Nanoseconds())/dups, float64(seg.Bytes())/1e6, seg.Segments())
	fmt.Printf("  naive linked list:          %6.2f ns/row, %5.2f MB\n",
		float64(lnkScan.Nanoseconds())/dups, float64(lnk.Bytes())/1e6)
}
