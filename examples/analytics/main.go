// analytics runs ad-hoc OLAP questions over a loaded SSB instance through
// the SQL front end: the kind of interactive slicing the paper's intro
// motivates. Every statement is parsed, planned into a QPPT plan
// (selections → composed select-join → aggregating output index) and
// executed through one shared Engine session, so later questions reuse
// the chunks of earlier ones; results print with dictionary strings
// decoded.
//
// Run with: go run ./examples/analytics [-sf 0.05]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"qppt"
	"qppt/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.05, "SSB scale factor")
	flag.Parse()

	fmt.Printf("loading SSB at SF=%g...\n\n", *sf)
	ds := ssb.MustLoad(ssb.GenConfig{SF: *sf, Seed: 7})
	eng, err := qppt.New(qppt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	sess := eng.Session(ds.Cat)

	queries := []struct{ title, text string }{
		{"Revenue by customer region (who buys the most?)",
			`select c_region, sum(lo_revenue) as revenue
			 from lineorder, customer
			 where lo_custkey = c_custkey
			 group by c_region
			 order by revenue desc`},
		{"Profit by year for European suppliers",
			`select d_year, sum(lo_revenue - lo_supplycost) as profit
			 from lineorder, supplier, ` + "`date`" + `
			 where lo_suppkey = s_suppkey and lo_orderdate = d_datekey
			 and s_region = 'EUROPE'
			 group by d_year
			 order by d_year`},
		{"Heavy discounting: revenue by discount tier for big orders",
			`select lo_discount, sum(lo_revenue) as revenue
			 from lineorder
			 where lo_quantity >= 40
			 group by lo_discount
			 order by lo_discount`},
		{"Top manufacturer categories in the US market",
			`select p_category, sum(lo_revenue) as revenue
			 from lineorder, part, customer
			 where lo_partkey = p_partkey and lo_custkey = c_custkey
			 and c_nation = 'UNITED STATES'
			 group by p_category
			 order by revenue desc`},
	}

	for _, q := range queries {
		fmt.Println("──", q.title)
		rows, stats, err := sess.Query(context.Background(), q.text, qppt.WithStats())
		if err != nil {
			log.Fatal(err)
		}
		for c, a := range rows.Attrs {
			if c > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%s", a)
		}
		fmt.Println()
		for i := range rows.Rows {
			if i == 8 {
				fmt.Printf("  ... %d more rows\n", len(rows.Rows)-8)
				break
			}
			for c := range rows.Attrs {
				if c > 0 {
					fmt.Print(" | ")
				}
				fmt.Print(rows.Decode(i, c))
			}
			fmt.Println()
		}
		fmt.Printf("(%d rows, %v total)\n\n", len(rows.Rows), stats.Total)
	}
}
