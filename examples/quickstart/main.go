// Quickstart: the indexed table-at-a-time processing model in ~100 lines.
//
// We load a tiny sales schema, build a partially clustered base index, and
// run one composed operator — a select-join with grouping — that answers
// "revenue by region for electronics orders" without materializing any
// intermediate tuples: the selection's qualifying rows stream straight
// into the join, and the output index groups and sorts as a side effect of
// its construction.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"qppt"
	"qppt/internal/catalog"
	"qppt/internal/core"
)

func main() {
	// 1. Load two relations. Strings get order-preserving dictionary
	// codes, so string predicates become integer key ranges.
	cat := catalog.New()
	products, err := cat.Load("products", []catalog.ColumnData{
		{Name: "pid", Ints: []uint64{1, 2, 3, 4, 5}},
		{Name: "category", Strs: []string{"electronics", "garden", "electronics", "toys", "garden"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	orders, err := cat.Load("orders", []catalog.ColumnData{
		{Name: "pid", Ints: []uint64{1, 2, 3, 1, 4, 3, 5, 1}},
		{Name: "region", Strs: []string{"EU", "EU", "US", "US", "EU", "EU", "US", "EU"}},
		{Name: "revenue", Ints: []uint64{10, 20, 30, 40, 50, 60, 70, 80}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build base indexes: products by category (a selection entry
	// point) and orders by product id (the join entry point), partially
	// clustered with the attributes the query will need.
	byCategory := products.MustIndex([]string{"category"}, "pid")
	byProduct := orders.MustIndex([]string{"pid"}, "region", "revenue")

	// 3. One composed operator: select products by category, probe the
	// orders index per qualifying product, group by region, sum revenue.
	// The output index is keyed on region — grouped and sorted for free.
	sj := &core.SelectJoin{
		SelInput:      &core.Base{Table: byCategory},
		Pred:          core.Point(products.Code("category", "electronics")),
		Main:          &core.Base{Table: byProduct},
		ProbeMainWith: core.Ref{Input: 0, Attr: "pid"},
		Out: core.OutputSpec{
			Name:     "revenue_by_region",
			Key:      core.SimpleKey("region", orders.Bits("region")),
			KeyRefs:  []core.Ref{{Input: 1, Attr: "region"}},
			Cols:     []string{"revenue", "orders"},
			ColExprs: []core.RowExpr{core.Attr(1, "revenue"), core.Computed(func([]uint64) uint64 { return 1 })},
			Fold:     core.FoldSum(0, 1),
		},
	}

	// 4. Execute through an Engine with statistics (the demonstrator's
	// view of a plan). One-shot execution works too — (&core.Plan{Root:
	// sj}).Run(...) — but the Engine is what a real embedder keeps: its
	// worker pool and chunk pool serve every later plan (see
	// examples/engine).
	eng, err := qppt.New(qppt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	out, stats, err := eng.RunPlan(context.Background(), &core.Plan{Root: sj}, qppt.WithStats())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("revenue by region for electronics:")
	for _, row := range core.Extract(out).Rows {
		fmt.Printf("  %-4s revenue=%3d orders=%d\n",
			orders.Decode("region", row[0]), row[1], row[2])
	}
	fmt.Println("\noperator statistics:")
	fmt.Print(stats)
}
