// engine demonstrates the long-lived Engine/Session API: one
// qppt.Engine serving many queries from warm resources — a shared worker
// pool, a session-scoped chunk recycler whose pool carries dropped
// intermediate indexes across plans, and one spill budget spanning
// everything in flight — plus context cancellation.
//
// The demo runs the SSB suite twice through one engine and prints the
// engine counters in between: the second pass draws most of its index
// chunks from the pool the first pass filled (nonzero "reused"), which is
// exactly the steady state a server reaches under real traffic. It then
// cancels a query mid-run and shows that the error is context.Canceled.
//
// Run with: go run ./examples/engine [-sf 0.05] [-workers 4]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"qppt"
	"qppt/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.05, "SSB scale factor")
	workers := flag.Int("workers", 4, "engine worker pool size")
	flag.Parse()

	fmt.Printf("loading SSB at SF=%g...\n\n", *sf)
	ds := ssb.MustLoad(ssb.GenConfig{SF: *sf, Seed: 42})

	// 1. One Engine for the whole process. Recycling is on by default —
	// cross-plan chunk reuse is most of why an engine beats one-shot
	// execution — and a memory budget makes cold intermediates spill
	// instead of growing the heap without bound.
	eng, err := qppt.New(qppt.Config{
		Workers:   *workers,
		MemBudget: 512 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 2. A Session plans SQL against the catalog and runs on the engine.
	sess := eng.Session(ds.Cat)
	ctx := context.Background()

	suite := func(tag string) time.Duration {
		t0 := time.Now()
		for _, qid := range ssb.QueryIDs {
			rows, _, err := sess.Query(ctx, ssb.SQLTexts[qid])
			if err != nil {
				log.Fatalf("Q%s: %v", qid, err)
			}
			_ = rows
		}
		d := time.Since(t0)
		fmt.Printf("%s: 13 queries in %v\n", tag, d.Round(time.Millisecond))
		return d
	}

	// 3. First pass fills the chunk pool; second pass runs out of it.
	suite("cold suite")
	fmt.Print(eng.Stats())
	fmt.Println()
	suite("warm suite")
	st := eng.Stats()
	fmt.Print(st)
	fmt.Printf("\ncross-plan reuse after the warm pass: %d chunk allocations served from the pool\n\n",
		st.Recycler.Reused)

	// 4. Prepared statements pay planning once.
	stmt, err := sess.Prepare(ctx, ssb.SQLTexts["2.3"], qppt.WithStats())
	if err != nil {
		log.Fatal(err)
	}
	rows, stats, err := stmt.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared Q2.3: %d rows in %v\n", len(rows.Rows), stats.Total.Round(time.Microsecond))

	// 5. Cancellation: a context cancelled mid-run unwinds the plan and
	// returns context.Canceled — no goroutines, pins or spill files leak.
	cctx, cancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(100 * time.Microsecond)
		cancel()
	}()
	_, _, err = sess.Query(cctx, ssb.SQLTexts["4.1"])
	switch {
	case err == nil:
		fmt.Println("cancellation demo: query finished before the cancel landed (tiny dataset)")
	case errors.Is(err, context.Canceled):
		fmt.Println("cancellation demo: query returned context.Canceled, engine still healthy")
	default:
		log.Fatalf("cancellation demo: unexpected error %v", err)
	}

	// The engine survives cancelled queries; prove it with one more run.
	if _, _, err := sess.Query(ctx, ssb.SQLTexts["1.1"]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal engine state:\n%s", eng.Stats())
}
