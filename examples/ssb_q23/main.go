// ssb_q23 walks through the paper's running example: Star Schema
// Benchmark query 2.3 (Figure 5), executed as a QPPT plan.
//
//	select sum(lo_revenue), d_year, p_brand1
//	from lineorder, date, part, supplier
//	where lo_orderdate = d_datekey and lo_partkey = p_partkey
//	  and lo_suppkey = s_suppkey
//	  and p_brand1 = 'MFGR#2221' and s_region = 'EUROPE'
//	group by d_year, p_brand1 order by d_year, p_brand1
//
// The demo mirrors the paper's demonstrator (Appendix A): it runs the
// query under different optimizer settings — select-join on/off and
// several joinbuffer sizes — and prints the per-operator execution
// statistics (time, index vs materialization split, output sizes).
//
// Run with: go run ./examples/ssb_q23 [-sf 0.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"qppt"
	"qppt/internal/core"
	"qppt/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 0.1, "SSB scale factor")
	flag.Parse()

	fmt.Printf("loading SSB at SF=%g...\n", *sf)
	ds := ssb.MustLoad(ssb.GenConfig{SF: *sf, Seed: 42})
	fmt.Printf("lineorder: %d rows\n\n", ds.Lineorder.Rows())

	// One engine serves every configuration below: the second and third
	// runs draw their index chunks from the pool the first run filled.
	eng, err := qppt.New(qppt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	configs := []struct {
		name string
		opt  ssb.PlanOptions
	}{
		{"select-join ON, joinbuffer 512 (default)", ssb.PlanOptions{
			UseSelectJoin: true,
			Exec:          core.Options{BufferSize: 512, CollectStats: true}}},
		{"select-join OFF (separate σ_part)", ssb.PlanOptions{
			UseSelectJoin: false,
			Exec:          core.Options{BufferSize: 512, CollectStats: true}}},
		{"select-join ON, joinbuffer 1 (no batching)", ssb.PlanOptions{
			UseSelectJoin: true,
			Exec:          core.Options{BufferSize: 1, CollectStats: true}}},
	}

	var ref *ssb.QueryResult
	for _, cfg := range configs {
		res, stats, err := ds.RunQPPTCtx(context.Background(), "2.3", cfg.opt, eng.Env())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── %s ──\n", cfg.name)
		fmt.Print(stats)
		if ref == nil {
			ref = res
		} else if !res.Equal(ref) {
			log.Fatal("optimizer settings changed the result!")
		}
		fmt.Println()
	}

	fmt.Printf("result (%d groups, already sorted by the output index key):\n", len(ref.Rows))
	for i, row := range ref.Rows {
		if i == 10 {
			fmt.Printf("  ... %d more\n", len(ref.Rows)-10)
			break
		}
		dec := ds.DecodeRow("2.3", row)
		fmt.Printf("  d_year=%s p_brand1=%s revenue=%s\n", dec[0], dec[1], dec[2])
	}
}
